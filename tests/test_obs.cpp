// Tests for the unified observability layer: the MetricsRegistry
// (exact totals under concurrency, histogram semantics, the Prometheus
// text exposition), TraceContext span trees (nesting, attrs, the bounded
// buffer, adopt() rebasing), trace completeness through the compile
// service for greedy/search/verify requests, the wire surfaces ("op":
// "metrics", "trace":true, HTTP GET /metrics), and the guarantee that
// tracing is observation-only — traced results are bitwise identical to
// untraced ones.

#include <gtest/gtest.h>
#include <sys/socket.h>

#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bench_suite/benchmarks.hpp"
#include "core/predictor.hpp"
#include "ir/qasm.hpp"
#include "net/server.hpp"
#include "net/socket.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "service/compile_service.hpp"
#include "service/jsonl.hpp"

namespace {

using qrc::bench::BenchmarkFamily;
using qrc::core::Predictor;
using qrc::ir::Circuit;
using qrc::obs::MetricsRegistry;
using qrc::obs::TraceContext;
using qrc::reward::RewardKind;
using qrc::service::CompileService;
using qrc::service::JsonValue;
using qrc::service::ServiceConfig;

Circuit small_ghz() {
  Circuit c(3, "ghz3");
  c.h(0);
  c.cx(0, 1);
  c.cx(1, 2);
  c.measure_all();
  return c;
}

/// One tiny trained model shared across tests (training is the slow part;
/// every compile path on it is const and thread-safe).
const Predictor& shared_model() {
  static auto* model = [] {
    qrc::core::PredictorConfig config;
    config.reward = RewardKind::kFidelity;
    config.seed = 11;
    config.ppo.total_timesteps = 512;
    config.ppo.steps_per_update = 256;
    config.ppo.hidden_sizes = {16};
    auto* predictor = new Predictor(config);
    (void)predictor->train({small_ghz()});
    return predictor;
  }();
  return *model;
}

std::shared_ptr<const Predictor> shared_handle() {
  return {&shared_model(), [](const Predictor*) {}};
}

/// Depth-first span names of a parsed trace JSON object.
void collect_span_names(const JsonValue& span, std::vector<std::string>& out) {
  const auto& obj = span.as_object();
  out.push_back(obj.at("name").as_string());
  const auto kids = obj.find("children");
  if (kids != obj.end()) {
    for (const auto& kid : kids->second.as_array()) {
      collect_span_names(kid, out);
    }
  }
}

std::vector<std::string> span_names(const TraceContext& trace) {
  std::vector<std::string> out;
  const auto parsed = JsonValue::parse(trace.to_json());
  for (const auto& root : parsed.as_object().at("spans").as_array()) {
    collect_span_names(root, out);
  }
  return out;
}

bool contains(const std::vector<std::string>& names, const std::string& want) {
  for (const auto& name : names) {
    if (name == want) {
      return true;
    }
  }
  return false;
}

/// The first span named `want` anywhere in the tree, or nullptr.
const JsonValue* find_span(const JsonValue& span, const std::string& want) {
  const auto& obj = span.as_object();
  if (obj.at("name").as_string() == want) {
    return &span;
  }
  const auto kids = obj.find("children");
  if (kids != obj.end()) {
    for (const auto& kid : kids->second.as_array()) {
      if (const JsonValue* hit = find_span(kid, want)) {
        return hit;
      }
    }
  }
  return nullptr;
}

const JsonValue* find_span(const JsonValue& trace_root,
                           const std::string& want, bool) {
  for (const auto& root : trace_root.as_object().at("spans").as_array()) {
    if (const JsonValue* hit = find_span(root, want)) {
      return hit;
    }
  }
  return nullptr;
}

// ------------------------------------------------------ metrics registry ---

TEST(MetricsRegistryTest, ConcurrentCountersStayExact) {
  MetricsRegistry registry;
  auto& plain = registry.counter("qrc_t_total", "test counter");
  auto& labeled =
      registry.counter("qrc_t_total", "test counter", {{"model", "a"}});
  auto& hist = registry.histogram("qrc_t_us", "test histogram", {10.0, 100.0});

  constexpr int kThreads = 8;
  constexpr int kIters = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        plain.inc();
        labeled.inc(2);
        hist.observe(static_cast<double>(i % 200));
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }

  EXPECT_EQ(plain.value(), static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(labeled.value(), 2u * kThreads * kIters);
  EXPECT_EQ(registry.counter_value("qrc_t_total", {{"model", "a"}}),
            2u * kThreads * kIters);
  EXPECT_EQ(registry.counter_total("qrc_t_total"),
            3u * kThreads * kIters);
  EXPECT_EQ(hist.count(), static_cast<std::uint64_t>(kThreads) * kIters);
  // Bucket totals must account for every observation exactly.
  std::uint64_t bucketed = 0;
  for (const std::uint64_t b : hist.bucket_counts()) {
    bucketed += b;
  }
  EXPECT_EQ(bucketed, hist.count());
}

TEST(MetricsRegistryTest, HandlesAreStableAndLabelOrderInsensitive) {
  MetricsRegistry registry;
  auto& ab = registry.counter("qrc_t", "t", {{"a", "1"}, {"b", "2"}});
  auto& ba = registry.counter("qrc_t", "t", {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(&ab, &ba);  // {a,b} and {b,a} name the same series
  ab.inc(5);
  EXPECT_EQ(registry.counter_value("qrc_t", {{"b", "2"}, {"a", "1"}}), 5u);
}

TEST(MetricsRegistryTest, GaugeSetAddAndRaiseOnlyMax) {
  MetricsRegistry registry;
  auto& gauge = registry.gauge("qrc_t_gauge", "t");
  gauge.set(10);
  gauge.add(-3);
  EXPECT_EQ(gauge.value(), 7);
  gauge.max_of(5);
  EXPECT_EQ(gauge.value(), 7);  // raise-only
  gauge.max_of(12);
  EXPECT_EQ(gauge.value(), 12);
}

TEST(MetricsRegistryTest, TypeConflictIsALogicError) {
  MetricsRegistry registry;
  registry.counter("qrc_t_mixed", "as counter");
  EXPECT_THROW(registry.gauge("qrc_t_mixed", "as gauge"), std::logic_error);
  EXPECT_THROW(registry.histogram("qrc_t_mixed", "as histogram", {1.0}),
               std::logic_error);
}

TEST(MetricsRegistryTest, PrometheusExpositionGolden) {
  MetricsRegistry registry;
  registry.counter("qrc_t_total", "requests served", {{"model", "a"}}).inc(3);
  registry.gauge("qrc_t_depth", "queue depth").set(-2);
  auto& hist = registry.histogram("qrc_t_us", "latency", {1.0, 5.0});
  hist.observe(0.5);
  hist.observe(5.0);  // le="5" is inclusive
  hist.observe(7.0);

  const std::string expected =
      "# HELP qrc_t_depth queue depth\n"
      "# TYPE qrc_t_depth gauge\n"
      "qrc_t_depth -2\n"
      "# HELP qrc_t_total requests served\n"
      "# TYPE qrc_t_total counter\n"
      "qrc_t_total{model=\"a\"} 3\n"
      "# HELP qrc_t_us latency\n"
      "# TYPE qrc_t_us histogram\n"
      "qrc_t_us_bucket{le=\"1\"} 1\n"
      "qrc_t_us_bucket{le=\"5\"} 2\n"
      "qrc_t_us_bucket{le=\"+Inf\"} 3\n"
      "qrc_t_us_sum 12.5\n"
      "qrc_t_us_count 3\n";
  EXPECT_EQ(registry.render_prometheus(), expected);
}

TEST(MetricsRegistryTest, LabelValuesAreEscaped) {
  MetricsRegistry registry;
  registry.counter("qrc_t", "t", {{"k", "a\"b\\c\nd"}}).inc();
  const std::string text = registry.render_prometheus();
  EXPECT_NE(text.find("qrc_t{k=\"a\\\"b\\\\c\\nd\"} 1"), std::string::npos)
      << text;
}

TEST(MetricsRegistryTest, KillSwitchStopsCounting) {
  MetricsRegistry registry;
  auto& counter = registry.counter("qrc_t", "t");
  auto& hist = registry.histogram("qrc_t_us", "t", {1.0});
  qrc::obs::set_enabled(false);
  counter.inc();
  hist.observe(0.5);
  qrc::obs::set_enabled(true);
  EXPECT_EQ(counter.value(), 0u);
  EXPECT_EQ(hist.count(), 0u);
  counter.inc();
  EXPECT_EQ(counter.value(), 1u);
}

// ---------------------------------------------------------- trace context ---

TEST(TraceContextTest, SpanTreeNestsAndCarriesAttrs) {
  TraceContext trace("req-1");
  const int root = trace.begin_span("compile");
  trace.set_ambient_parent(root);
  const int child = trace.begin_span("rollout");  // under the ambient parent
  trace.attr(child, "fused_circuits", static_cast<std::int64_t>(4));
  trace.attr(child, "hit", false);
  trace.attr(child, "strategy", "beam");
  trace.end_span(child);
  trace.end_span(root);

  const auto parsed = JsonValue::parse(trace.to_json());
  const auto& obj = parsed.as_object();
  EXPECT_EQ(obj.at("id").as_string(), "req-1");
  EXPECT_EQ(obj.at("dropped").as_number(), 0.0);
  const auto& roots = obj.at("spans").as_array();
  ASSERT_EQ(roots.size(), 1u);  // the child is nested, not a second root
  const JsonValue* rollout = find_span(parsed, "rollout", true);
  ASSERT_NE(rollout, nullptr);
  const auto& attrs = rollout->as_object().at("attrs").as_object();
  EXPECT_EQ(attrs.at("fused_circuits").as_number(), 4.0);
  EXPECT_FALSE(attrs.at("hit").as_bool());
  EXPECT_EQ(attrs.at("strategy").as_string(), "beam");

  const std::string text = trace.to_text();
  EXPECT_NE(text.find("compile"), std::string::npos);
  EXPECT_NE(text.find("  rollout"), std::string::npos);  // indented child
}

TEST(TraceContextTest, BoundedBufferCountsDrops) {
  TraceContext trace("req-2", /*max_spans=*/4);
  for (int i = 0; i < 10; ++i) {
    const int id = trace.begin_span("s" + std::to_string(i));
    trace.end_span(id);  // no-op for dropped ids
  }
  EXPECT_EQ(trace.span_count(), 4u);
  EXPECT_EQ(trace.dropped(), 6u);
  const auto parsed = JsonValue::parse(trace.to_json());
  EXPECT_EQ(parsed.as_object().at("dropped").as_number(), 6.0);
}

TEST(TraceContextTest, AdoptRebasesSpansUnderParent) {
  TraceContext trace("req-3");
  const int parent = trace.begin_span("search");

  TraceContext collector("collector");
  const int outer = collector.begin_span("leaf_eval");
  collector.set_ambient_parent(outer);
  const int inner = collector.begin_span("forward");
  collector.end_span(inner);
  collector.end_span(outer);

  trace.adopt(collector, parent);
  trace.end_span(parent);

  const auto parsed = JsonValue::parse(trace.to_json());
  // leaf_eval landed under search; forward stayed under leaf_eval.
  const JsonValue* search = find_span(parsed, "search", true);
  ASSERT_NE(search, nullptr);
  ASSERT_NE(find_span(*search, "leaf_eval"), nullptr);
  const JsonValue* leaf = find_span(*search, "leaf_eval");
  EXPECT_NE(find_span(*leaf, "forward"), nullptr);
}

TEST(TraceContextTest, DetailTimerIsAmbientAndGated) {
  const bool saved = qrc::obs::detail_enabled();
  TraceContext trace("req-4");
  qrc::obs::TraceContext::set_current(&trace);

  qrc::obs::set_detail_enabled(false);
  { qrc::obs::DetailTimer timer("hot"); }
  EXPECT_EQ(trace.span_count(), 0u);  // disabled: one branch, no span

  qrc::obs::set_detail_enabled(true);
  { qrc::obs::DetailTimer timer("hot"); }
  EXPECT_EQ(trace.span_count(), 1u);

  qrc::obs::TraceContext::set_current(nullptr);
  { qrc::obs::DetailTimer timer("hot"); }  // no ambient context: no-op
  EXPECT_EQ(trace.span_count(), 1u);

  qrc::obs::set_detail_enabled(saved);
}

// --------------------------------------------------- service trace shapes ---

TEST(ServiceTraceTest, GreedyCompileSpanTreeIsComplete) {
  CompileService svc;
  svc.registry().add("fidelity", shared_handle());
  const auto trace = std::make_shared<TraceContext>("g1");
  auto response =
      svc.submit("g1", "fidelity", small_ghz(), /*verify=*/false,
                 std::nullopt, trace)
          .get();
  ASSERT_NE(response.trace, nullptr);
  const auto names = span_names(*response.trace);
  EXPECT_TRUE(contains(names, "queue_wait")) << response.trace->to_json();
  EXPECT_TRUE(contains(names, "batch")) << response.trace->to_json();
  EXPECT_TRUE(contains(names, "rollout")) << response.trace->to_json();
  // rollout is a child of batch, not a second root.
  const auto parsed = JsonValue::parse(response.trace->to_json());
  const JsonValue* batch = find_span(parsed, "batch", true);
  ASSERT_NE(batch, nullptr);
  EXPECT_NE(find_span(*batch, "rollout"), nullptr);
}

TEST(ServiceTraceTest, SearchAndVerifySpansCarryOutcomeAttrs) {
  CompileService svc;
  svc.registry().add("fidelity", shared_handle());
  qrc::search::SearchOptions options;
  options.strategy = qrc::search::Strategy::kBeam;
  options.beam_width = 2;
  const auto trace = std::make_shared<TraceContext>("s1");
  auto response = svc.submit("s1", "fidelity", small_ghz(), /*verify=*/true,
                             options, trace)
                      .get();
  ASSERT_NE(response.trace, nullptr);
  const auto parsed = JsonValue::parse(response.trace->to_json());

  const JsonValue* search = find_span(parsed, "search", true);
  ASSERT_NE(search, nullptr) << response.trace->to_json();
  const auto& search_attrs = search->as_object().at("attrs").as_object();
  EXPECT_EQ(search_attrs.at("strategy").as_string(), "beam");
  EXPECT_GE(search_attrs.at("nodes_expanded").as_number(), 0.0);

  const JsonValue* verify = find_span(parsed, "verify", true);
  ASSERT_NE(verify, nullptr) << response.trace->to_json();
  const auto& verify_attrs = verify->as_object().at("attrs").as_object();
  EXPECT_FALSE(verify_attrs.at("method").as_string().empty());
  EXPECT_FALSE(verify_attrs.at("verdict").as_string().empty());

  // The per-strategy and per-method label sets landed in the registry.
  EXPECT_EQ(svc.metrics().counter_value("qrc_search_requests_total",
                                        {{"strategy", "beam"}}),
            1u);
  EXPECT_GE(svc.metrics().counter_total("qrc_verify_verdicts_total"), 1u);
}

TEST(ServiceTraceTest, CacheHitTracesTheLookup) {
  CompileService svc;
  svc.registry().add("fidelity", shared_handle());
  (void)svc.submit("warm", "fidelity", small_ghz()).get();
  const auto trace = std::make_shared<TraceContext>("hit1");
  auto response = svc.submit("hit1", "fidelity", small_ghz(),
                             /*verify=*/false, std::nullopt, trace)
                      .get();
  ASSERT_TRUE(response.cached);
  ASSERT_NE(response.trace, nullptr);
  const auto parsed = JsonValue::parse(response.trace->to_json());
  const JsonValue* lookup = find_span(parsed, "cache_lookup", true);
  ASSERT_NE(lookup, nullptr);
  EXPECT_TRUE(
      lookup->as_object().at("attrs").as_object().at("hit").as_bool());
}

TEST(ServiceTraceTest, LegacyStatsSnapshotStillAddsUp) {
  CompileService svc;
  svc.registry().add("fidelity", shared_handle());
  (void)svc.submit("a", "fidelity", small_ghz()).get();
  (void)svc.submit("b", "fidelity", small_ghz()).get();  // cache hit
  const auto stats = svc.stats();
  EXPECT_EQ(stats.requests, 2u);
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.batched_requests, 1u);
  EXPECT_EQ(stats.max_batch_size, 1);
  // The registry agrees with the legacy snapshot field for field.
  EXPECT_EQ(svc.metrics().counter_value("qrc_requests_total",
                                        {{"model", "fidelity"}}),
            2u);
  EXPECT_EQ(svc.metrics().counter_value("qrc_cache_hits_total"), 1u);
}

// ----------------------------------------------------------- wire surface ---

struct TestServer {
  CompileService service;
  qrc::net::Server server;

  explicit TestServer(qrc::net::ServerConfig net_config = {})
      : service(ServiceConfig{}), server(service, [&net_config] {
          net_config.host = "127.0.0.1";
          net_config.port = 0;
          return net_config;
        }()) {
    service.registry().add("fidelity", shared_handle());
    server.start();
  }
};

struct Client {
  qrc::net::Socket sock;
  qrc::net::LineReader reader;

  explicit Client(int port)
      : sock(qrc::net::connect_tcp("127.0.0.1", port)), reader(sock.fd()) {}

  void send(const std::string& line) {
    qrc::net::send_all(sock.fd(), line + "\n");
  }
  std::optional<std::string> recv() { return reader.next_line(); }
};

std::string compile_request(const std::string& id, const Circuit& circuit,
                            const std::string& extra = "") {
  return "{\"v\":1,\"op\":\"compile\",\"id\":" +
         qrc::service::json_quote(id) +
         ",\"qasm\":" + qrc::service::json_quote(qrc::ir::to_qasm(circuit)) +
         extra + "}";
}

TEST(NetObsTest, TraceTrueEchoesTheSpanTreeOnTheResponse) {
  TestServer ts;
  Client client(ts.server.port());

  // Untraced request: no "trace" field on the frame.
  client.send(compile_request("plain", small_ghz()));
  auto line = client.recv();
  ASSERT_TRUE(line.has_value());
  auto frame = JsonValue::parse(*line);
  EXPECT_EQ(frame.as_object().count("trace"), 0u);

  client.send(compile_request("traced", small_ghz(), ",\"trace\":true"));
  line = client.recv();
  ASSERT_TRUE(line.has_value());
  frame = JsonValue::parse(*line);
  ASSERT_EQ(frame.as_object().count("trace"), 1u) << *line;
  const auto& trace = frame.as_object().at("trace");
  EXPECT_EQ(trace.as_object().at("id").as_string(), "traced");
  std::vector<std::string> names;
  for (const auto& root : trace.as_object().at("spans").as_array()) {
    collect_span_names(root, names);
  }
  // The server prepends the frame-decode span; the service records the
  // queue -> batch pipeline (this repeat circuit hits the cache instead
  // of re-running the rollout, so accept either shape past the decode).
  EXPECT_TRUE(contains(names, "decode")) << *line;
  EXPECT_TRUE(contains(names, "queue_wait") || contains(names, "cache_lookup"))
      << *line;
}

TEST(NetObsTest, MetricsOpReturnsTheExposition) {
  TestServer ts;
  Client client(ts.server.port());
  client.send(compile_request("c1", small_ghz()));
  ASSERT_TRUE(client.recv().has_value());

  client.send("{\"v\":1,\"op\":\"metrics\",\"id\":\"m1\"}");
  const auto line = client.recv();
  ASSERT_TRUE(line.has_value());
  const auto frame = JsonValue::parse(*line);
  const auto& obj = frame.as_object();
  EXPECT_EQ(obj.at("op").as_string(), "metrics");
  EXPECT_EQ(obj.at("type").as_string(), "result");
  const std::string& body = obj.at("body").as_string();
  EXPECT_NE(body.find("qrc_requests_total{model=\"fidelity\"} 1"),
            std::string::npos)
      << body;
  EXPECT_NE(body.find("qrc_net_frames_in_total"), std::string::npos);
}

TEST(NetObsTest, HttpMetricsListenerServesLabeledFamilies) {
  qrc::net::ServerConfig net_config;
  net_config.metrics_port = 0;  // ephemeral side listener
  TestServer ts(net_config);
  ASSERT_GE(ts.server.metrics_port(), 0);

  // Drive one verified search compile so the per-model, per-strategy and
  // per-verify-tier label sets all exist in the scrape.
  Client client(ts.server.port());
  client.send(compile_request(
      "v1", small_ghz(), ",\"verify\":true,\"search\":\"beam:2\""));
  for (;;) {
    const auto line = client.recv();
    ASSERT_TRUE(line.has_value());
    if (line->find("\"type\":\"partial\"") == std::string::npos) {
      break;
    }
  }

  const qrc::net::Socket sock =
      qrc::net::connect_tcp("127.0.0.1", ts.server.metrics_port());
  qrc::net::send_all(sock.fd(), "GET /metrics HTTP/1.0\r\n\r\n");
  std::string response;
  char buf[4096];
  for (;;) {
    const auto n = ::recv(sock.fd(), buf, sizeof(buf), 0);
    if (n <= 0) {
      break;
    }
    response.append(buf, static_cast<std::size_t>(n));
  }
  EXPECT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(response.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(response.find("qrc_requests_total{model=\"fidelity\"}"),
            std::string::npos)
      << response;
  EXPECT_NE(response.find("qrc_search_requests_total{strategy=\"beam\"}"),
            std::string::npos);
  EXPECT_NE(response.find("qrc_verify_verdicts_total{method="),
            std::string::npos);
  EXPECT_NE(response.find("qrc_net_connections_active"), std::string::npos);
  EXPECT_GE(ts.server.stats().accepted, 1u);

  // Unknown paths get a 404 without wedging the listener.
  const qrc::net::Socket sock2 =
      qrc::net::connect_tcp("127.0.0.1", ts.server.metrics_port());
  qrc::net::send_all(sock2.fd(), "GET /nope HTTP/1.0\r\n\r\n");
  std::string miss;
  for (;;) {
    const auto n = ::recv(sock2.fd(), buf, sizeof(buf), 0);
    if (n <= 0) {
      break;
    }
    miss.append(buf, static_cast<std::size_t>(n));
  }
  EXPECT_NE(miss.find("404"), std::string::npos);
}

// ----------------------------------------------------------- determinism ---

TEST(ObsDeterminismTest, TracingLeavesCompiledResultsBitwiseUnchanged) {
  const bool saved = qrc::obs::detail_enabled();
  const Circuit circuit =
      qrc::bench::make_benchmark(BenchmarkFamily::kVqe, 4, 1);

  qrc::obs::set_detail_enabled(false);
  const std::string baseline =
      qrc::ir::to_qasm(shared_model().compile(circuit).circuit);

  // Traced, with detail spans on: every hot-path timer fires.
  qrc::obs::set_detail_enabled(true);
  CompileService svc;
  svc.registry().add("fidelity", shared_handle());
  const auto trace = std::make_shared<TraceContext>("det");
  auto traced = svc.submit("det", "fidelity", circuit, /*verify=*/false,
                           std::nullopt, trace)
                    .get();
  qrc::obs::set_detail_enabled(saved);

  EXPECT_EQ(qrc::ir::to_qasm(traced.result.circuit), baseline);
  ASSERT_NE(traced.trace, nullptr);
  // The detail collector actually recorded hot-path spans and they were
  // adopted under the request's rollout span.
  const auto names = span_names(*traced.trace);
  EXPECT_TRUE(contains(names, "policy_forward"))
      << traced.trace->to_json();
  EXPECT_TRUE(contains(names, "env_step")) << traced.trace->to_json();
}

}  // namespace
