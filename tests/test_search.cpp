// Tests for the policy-guided search engine: spec parsing, the greedy
// floor (beam(1) == compile() bit-for-bit, search never worse than greedy
// on a corpus), worker-count invariance, deadline handling, transposition
// accounting, the service round trip with per-request "search" configs
// (including cache-key separation from greedy results), and the
// verification gate on searched outputs across the device grid.

#include <gtest/gtest.h>

#include <future>
#include <set>
#include <string>
#include <vector>

#include "bench_suite/benchmarks.hpp"
#include "core/predictor.hpp"
#include "core/rollout.hpp"
#include "ir/qasm.hpp"
#include "rl/thread_pool.hpp"
#include "search/engine.hpp"
#include "search/search.hpp"
#include "service/compile_service.hpp"
#include "service/jsonl.hpp"

namespace {

using qrc::bench::BenchmarkFamily;
using qrc::core::CompilationResult;
using qrc::core::Predictor;
using qrc::ir::Circuit;
using qrc::search::SearchOptions;
using qrc::search::Strategy;
using qrc::service::CompileService;
using qrc::service::JsonValue;
using qrc::service::ServiceConfig;

std::vector<Circuit> corpus_of(int count, int min_q = 2, int max_q = 5) {
  return qrc::bench::benchmark_suite(min_q, max_q, count);
}

/// One tiny trained model shared across tests (training is the slow part;
/// every compile* method is const and thread-safe).
const Predictor& shared_model() {
  static auto* model = [] {
    qrc::core::PredictorConfig config;
    config.reward = qrc::reward::RewardKind::kFidelity;
    config.seed = 5;
    config.ppo.total_timesteps = 768;
    config.ppo.steps_per_update = 256;
    config.ppo.hidden_sizes = {16};
    auto* predictor = new Predictor(config);
    (void)predictor->train(corpus_of(6));
    return predictor;
  }();
  return *model;
}

std::shared_ptr<const Predictor> shared_handle() {
  return {&shared_model(), [](const Predictor*) {}};
}

void expect_same_result(const CompilationResult& got,
                        const CompilationResult& want,
                        const std::string& context) {
  EXPECT_EQ(got.action_trace, want.action_trace) << context;
  EXPECT_EQ(got.reward, want.reward) << context;
  EXPECT_EQ(got.used_fallback, want.used_fallback) << context;
  EXPECT_EQ(got.device, want.device) << context;
  EXPECT_TRUE(got.circuit == want.circuit) << context;
  EXPECT_EQ(got.initial_layout, want.initial_layout) << context;
  EXPECT_EQ(got.final_layout, want.final_layout) << context;
}

// ------------------------------------------------------------ the specs --

TEST(SearchSpecTest, ParsesBeamAndMctsSpecs) {
  const auto beam = qrc::search::parse_spec("beam:12");
  EXPECT_EQ(beam.strategy, Strategy::kBeam);
  EXPECT_EQ(beam.beam_width, 12);
  EXPECT_EQ(qrc::search::spec_string(beam), "beam:12");

  const auto beam_default = qrc::search::parse_spec("beam");
  EXPECT_EQ(beam_default.beam_width, SearchOptions{}.beam_width);

  const auto mcts = qrc::search::parse_spec("mcts:250");
  EXPECT_EQ(mcts.strategy, Strategy::kMcts);
  EXPECT_EQ(mcts.simulations, 250);
  EXPECT_EQ(qrc::search::spec_string(mcts), "mcts:250");
}

TEST(SearchSpecTest, RejectsMalformedSpecs) {
  for (const char* bad :
       {"", "beams", "beam:", "beam:0", "beam:-3", "beam:4x", "mcts:",
        "mcts:1.5", "bfs:2"}) {
    EXPECT_THROW((void)qrc::search::parse_spec(bad), std::runtime_error)
        << bad;
  }
}

TEST(SearchSpecTest, CacheTokensSeparateConfigs) {
  std::set<std::string> tokens;
  for (const char* spec : {"beam:1", "beam:8", "mcts:8", "mcts:400"}) {
    tokens.insert(qrc::search::cache_token(qrc::search::parse_spec(spec)));
  }
  EXPECT_EQ(tokens.size(), 4u);
  auto deadline = qrc::search::parse_spec("beam:8");
  deadline.deadline_ms = 50;
  tokens.insert(qrc::search::cache_token(deadline));
  EXPECT_EQ(tokens.size(), 5u);  // deadline changes the key too
}

// ------------------------------------------------------- the greedy floor --

TEST(SearchEngineTest, BeamWidthOneMatchesGreedyBitForBit) {
  const auto suite = corpus_of(8);
  SearchOptions options;
  options.strategy = Strategy::kBeam;
  options.beam_width = 1;
  for (const auto& circuit : suite) {
    const auto greedy = shared_model().compile(circuit);
    const auto searched = shared_model().compile_search(circuit, options);
    expect_same_result(searched, greedy, circuit.name());
    ASSERT_TRUE(searched.search_stats.has_value());
    EXPECT_EQ(searched.search_stats->baseline_reward, greedy.reward);
    EXPECT_FALSE(searched.search_stats->improved) << circuit.name();
  }
}

TEST(SearchEngineTest, SearchNeverWorseThanGreedyOnACorpus) {
  const auto suite = corpus_of(20);
  const auto greedy = shared_model().compile_all(suite);
  for (const char* spec : {"beam:4", "mcts:128"}) {
    const auto options = qrc::search::parse_spec(spec);
    const auto searched = shared_model().compile_search_all(suite, options);
    for (std::size_t i = 0; i < suite.size(); ++i) {
      EXPECT_GE(searched[i].reward, greedy[i].reward)
          << spec << " on " << suite[i].name();
      ASSERT_TRUE(searched[i].search_stats.has_value());
      EXPECT_EQ(searched[i].search_stats->baseline_reward,
                greedy[i].reward);
      EXPECT_EQ(searched[i].search_stats->improved,
                searched[i].reward > greedy[i].reward);
      // A result that claims improvement must come from a found terminal.
      if (searched[i].search_stats->improved) {
        EXPECT_FALSE(searched[i].used_fallback);
        EXPECT_EQ(searched[i].reward,
                  searched[i].search_stats->best_reward);
      }
    }
  }
}

// ------------------------------------------------------------ determinism --

TEST(SearchEngineTest, BitwiseDeterministicAcrossWorkerCounts) {
  const auto suite = corpus_of(4);
  for (const char* spec : {"beam:6", "mcts:96"}) {
    const auto options = qrc::search::parse_spec(spec);
    qrc::rl::WorkerPool serial(1);
    qrc::rl::WorkerPool wide(4);
    const auto a =
        shared_model().compile_search_all(suite, options, &serial);
    const auto b = shared_model().compile_search_all(suite, options, &wide);
    for (std::size_t i = 0; i < suite.size(); ++i) {
      expect_same_result(b[i], a[i],
                         std::string(spec) + " on " + suite[i].name());
      EXPECT_EQ(a[i].search_stats->nodes_expanded,
                b[i].search_stats->nodes_expanded);
      EXPECT_EQ(a[i].search_stats->transposition_hits,
                b[i].search_stats->transposition_hits);
      EXPECT_EQ(a[i].search_stats->best_reward,
                b[i].search_stats->best_reward);
    }
  }
}

// --------------------------------------------------------------- deadline --

TEST(SearchEngineTest, DeadlineIsHonoredWithAnytimeResult) {
  // A simulation budget that would run for minutes, cut to 60 ms: the
  // search must stop within one scheduling quantum (one MCTS batch) of
  // the deadline and still return a valid (greedy-clamped) result.
  const Circuit circuit = qrc::bench::make_benchmark(
      BenchmarkFamily::kQft, 6, 1);
  SearchOptions options;
  options.strategy = Strategy::kMcts;
  options.simulations = 50'000'000;
  options.deadline_ms = 60;
  const auto result = shared_model().compile_search(circuit, options);
  ASSERT_TRUE(result.search_stats.has_value());
  const auto& stats = *result.search_stats;
  EXPECT_TRUE(stats.deadline_hit);
  EXPECT_LT(stats.simulations_run, options.simulations);
  // Generous quantum bound: one leaf batch on a tiny net takes far less
  // than two seconds even under sanitizers on a loaded CI box.
  EXPECT_LE(stats.elapsed_us, (60 + 2000) * 1000);
  EXPECT_GE(result.reward, stats.baseline_reward);
  EXPECT_NE(result.device, nullptr);

  // An unlimited-deadline run reports no hit.
  SearchOptions no_deadline;
  no_deadline.strategy = Strategy::kMcts;
  no_deadline.simulations = 16;
  const auto free_run = shared_model().compile_search(circuit, no_deadline);
  EXPECT_FALSE(free_run.search_stats->deadline_hit);
}

// --------------------------------------------------------- transpositions --

TEST(SearchEngineTest, MctsMergesTransposedStates) {
  // With a few hundred simulations over 29 actions the tree necessarily
  // re-reaches states (no-op optimization actions alone map a node onto
  // itself), which the table must merge instead of re-evaluating.
  const Circuit circuit = qrc::bench::make_benchmark(
      BenchmarkFamily::kGhz, 4, 1);
  SearchOptions options;
  options.strategy = Strategy::kMcts;
  options.simulations = 256;
  const auto result = shared_model().compile_search(circuit, options);
  ASSERT_TRUE(result.search_stats.has_value());
  EXPECT_GT(result.search_stats->transposition_hits, 0u);
  EXPECT_GT(result.search_stats->transposition_entries, 0u);
  // Evaluations happen once per distinct state, not once per visit.
  EXPECT_LE(result.search_stats->policy_evals,
            result.search_stats->transposition_entries + 1);
}

TEST(SearchEngineTest, StateKeyDistinguishesCompilationPhases) {
  qrc::core::CompilationState start;
  start.circuit = qrc::bench::make_benchmark(BenchmarkFamily::kGhz, 3, 1);
  const auto base = qrc::search::state_key(start);

  qrc::core::CompilationState chosen = start;
  chosen.platform = qrc::device::Platform::kIBM;
  EXPECT_NE(qrc::search::state_key(chosen), base);

  qrc::core::CompilationState laid_out = chosen;
  laid_out.initial_layout = std::vector<int>{0, 1, 2};
  laid_out.layout_applied = true;
  EXPECT_NE(qrc::search::state_key(laid_out),
            qrc::search::state_key(chosen));
}

// -------------------------------------------------------------- the service --

TEST(SearchServiceTest, SearchConfigsGetTheirOwnCacheEntries) {
  CompileService service{ServiceConfig{}};
  service.registry().add("fidelity", shared_handle());
  const Circuit circuit = qrc::bench::make_benchmark(
      BenchmarkFamily::kGhz, 3, 1);

  const auto greedy = service.submit("g", "", circuit).get();
  EXPECT_FALSE(greedy.cached);

  // Same circuit under a search config: a distinct cache key, so no hit —
  // and the result matches a direct compile_search exactly.
  const auto beam_options = qrc::search::parse_spec("beam:2");
  const auto beam =
      service.submit("b", "", circuit, false, beam_options).get();
  EXPECT_FALSE(beam.cached);
  ASSERT_TRUE(beam.result.search_stats.has_value());
  expect_same_result(beam.result,
                     shared_model().compile_search(circuit, beam_options),
                     "service beam vs direct");

  // Replaying the searched request hits its own entry; greedy stays
  // separately cached; a different budget misses again.
  EXPECT_TRUE(service.submit("b2", "", circuit, false, beam_options)
                  .get()
                  .cached);
  EXPECT_TRUE(service.submit("g2", "", circuit).get().cached);
  EXPECT_FALSE(service
                   .submit("b3", "", circuit, false,
                           qrc::search::parse_spec("beam:3"))
                   .get()
                   .cached);

  const auto mcts = service
                        .submit("m", "", circuit, false,
                                qrc::search::parse_spec("mcts:32"))
                        .get();
  EXPECT_FALSE(mcts.cached);

  const auto stats = service.stats();
  EXPECT_EQ(stats.beam_requests, 3u);
  EXPECT_EQ(stats.mcts_requests, 1u);
  EXPECT_EQ(stats.cache_hits, 2u);
}

TEST(SearchServiceTest, JsonlRoundTripCarriesSearchFields) {
  const auto request = qrc::service::parse_serve_request(
      R"({"id": "s1", "qasm": "x", "search": "mcts:64", "deadline_ms": 250})");
  ASSERT_TRUE(request.search.has_value());
  EXPECT_EQ(request.search->strategy, Strategy::kMcts);
  EXPECT_EQ(request.search->simulations, 64);
  EXPECT_EQ(request.search->deadline_ms, 250);

  EXPECT_FALSE(qrc::service::parse_serve_request(R"({"qasm": "x"})")
                   .search.has_value());
  // Malformed search configs are request errors, not silent greedy runs.
  EXPECT_THROW((void)qrc::service::parse_serve_request(
                   R"({"qasm": "x", "search": "dfs:2"})"),
               std::runtime_error);
  EXPECT_THROW((void)qrc::service::parse_serve_request(
                   R"({"qasm": "x", "search": 8})"),
               std::runtime_error);
  EXPECT_THROW((void)qrc::service::parse_serve_request(
                   R"({"qasm": "x", "deadline_ms": 10})"),
               std::runtime_error);  // deadline without search
  EXPECT_THROW((void)qrc::service::parse_serve_request(
                   R"({"qasm": "x", "search": "beam:2", "deadline_ms": 0})"),
               std::runtime_error);

  CompileService service{ServiceConfig{}};
  service.registry().add("fidelity", shared_handle());
  const Circuit circuit = qrc::bench::make_benchmark(
      BenchmarkFamily::kVqe, 3, 1);
  const auto response =
      service.submit("s", "", circuit, false, qrc::search::parse_spec("beam:2"))
          .get();
  const auto line = JsonValue::parse(
      qrc::service::serve_response_line(response));
  const auto& obj = line.as_object();
  EXPECT_EQ(obj.at("search").as_string(), "beam:2");
  EXPECT_GT(obj.at("search_nodes").as_number(), 0.0);
  EXPECT_GE(obj.at("search_reward_delta").as_number(), 0.0);
  EXPECT_FALSE(obj.at("search_deadline_hit").as_bool());
  // Greedy responses carry no search fields.
  const auto plain = service.submit("p", "", circuit).get();
  EXPECT_EQ(JsonValue::parse(qrc::service::serve_response_line(plain))
                .as_object()
                .count("search"),
            0u);
}

// ---------------------------------------------- the verification gate --

TEST(SearchVerifyTest, SearchedResultsPassTheEquivalenceGate) {
  // Fuzz-grid spot check (families x widths, both strategies): every
  // searched compilation must verify equivalent to its input through the
  // PR 4 gate, exactly like greedy compilations do. Device widths from 8
  // (oqc_lucy's cap) up to 12 (above ionq_harmony's) steer the sweep
  // across the device library.
  const qrc::verify::VerifyOptions verify_options;
  std::set<std::string> devices_seen;
  int checked = 0;
  const BenchmarkFamily families[] = {
      BenchmarkFamily::kGhz, BenchmarkFamily::kDj, BenchmarkFamily::kQft,
      BenchmarkFamily::kVqe, BenchmarkFamily::kWstate,
      BenchmarkFamily::kGraphState};
  for (std::size_t f = 0; f < std::size(families); ++f) {
    const int qubits = 3 + static_cast<int>(f) % 4;
    const Circuit circuit = qrc::bench::make_benchmark(
        families[f], qubits, 20 + static_cast<std::uint64_t>(f));
    for (const char* spec : {"beam:4", "mcts:48"}) {
      const auto result = shared_model().compile_search(
          circuit, qrc::search::parse_spec(spec), &verify_options);
      ASSERT_TRUE(result.verification.has_value());
      EXPECT_EQ(result.verification->verdict,
                qrc::verify::Verdict::kEquivalent)
          << spec << " on " << circuit.name() << ": "
          << result.verification->detail;
      ASSERT_NE(result.device, nullptr);
      devices_seen.insert(result.device->name());
      ++checked;
    }
  }
  EXPECT_EQ(checked, 12);
  EXPECT_GE(devices_seen.size(), 1u);
}

}  // namespace
