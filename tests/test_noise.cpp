// Tests for the Monte-Carlo Pauli-noise simulator and its relationship to
// the analytic expected-fidelity proxy.

#include <gtest/gtest.h>

#include "bench_suite/benchmarks.hpp"
#include "device/library.hpp"
#include "noise/noise_sim.hpp"
#include "reward/reward.hpp"

namespace {

using qrc::device::CouplingMap;
using qrc::device::Device;
using qrc::device::DeviceId;
using qrc::device::Platform;
using qrc::ir::Circuit;

Circuit ghz(int n) {
  Circuit c(n, "ghz");
  c.h(0);
  for (int i = 0; i + 1 < n; ++i) {
    c.cx(i, i + 1);
  }
  c.measure_all();
  return c;
}

TEST(NoiseSimTest, NoiselessScaleGivesUnitFidelity) {
  const Device line5("noise_line5", Platform::kIBM, CouplingMap::line(5), 75);
  const auto est =
      qrc::noise::simulate_noisy_fidelity(ghz(4), line5, 50, 1, 0.0);
  EXPECT_NEAR(est.mean, 1.0, 1e-9);
  EXPECT_NEAR(est.std_err, 0.0, 1e-6);
}

TEST(NoiseSimTest, FidelityDecreasesWithErrorScale) {
  // Note: the circuit must be executable on the device (coupled 2q pairs),
  // otherwise op_error reports certain failure — the line topology matches
  // the GHZ chain exactly.
  const Device line5("noise_line5", Platform::kIBM, CouplingMap::line(5), 75);
  const Circuit c = ghz(5);
  double last = 1.01;
  for (const double scale : {0.5, 2.0, 8.0}) {
    const auto est =
        qrc::noise::simulate_noisy_fidelity(c, line5, 400, 7, scale);
    EXPECT_LT(est.mean, last) << "scale " << scale;
    last = est.mean;
  }
}

TEST(NoiseSimTest, DeterministicGivenSeed) {
  const Device line5("noise_line5", Platform::kIBM, CouplingMap::line(5), 75);
  const auto a =
      qrc::noise::simulate_noisy_fidelity(ghz(4), line5, 100, 3, 4.0);
  const auto b =
      qrc::noise::simulate_noisy_fidelity(ghz(4), line5, 100, 3, 4.0);
  EXPECT_EQ(a.mean, b.mean);
}

TEST(NoiseSimTest, WorksOnWideDeviceViaCompaction) {
  // A 5-active-qubit circuit living on the 127-qubit register.
  const auto& washington = qrc::device::get_device(DeviceId::kIbmqWashington);
  Circuit c(127);
  c.h(30);
  c.cx(30, 31);
  c.cx(31, 32);
  c.measure(30);
  c.measure(31);
  const auto est =
      qrc::noise::simulate_noisy_fidelity(c, washington, 100, 5, 1.0);
  EXPECT_GT(est.mean, 0.8);
  EXPECT_LE(est.mean, 1.0);
}

TEST(NoiseSimTest, RejectsTooManyActiveQubits) {
  const auto& dev = qrc::device::get_device(DeviceId::kIbmqWashington);
  Circuit wide(127);
  for (int q = 0; q < 20; ++q) {
    wide.h(q);
  }
  EXPECT_THROW(
      (void)qrc::noise::simulate_noisy_fidelity(wide, dev, 10, 1, 1.0, 14),
      std::invalid_argument);
}

TEST(NoiseSimTest, AnalyticProxyMatchesRewardModule) {
  const auto& dev = qrc::device::get_device(DeviceId::kIonqHarmony);
  const Circuit c = ghz(5);
  EXPECT_NEAR(qrc::noise::analytic_success_probability(c, dev),
              qrc::reward::expected_fidelity(c, dev), 1e-12);
}

TEST(NoiseSimTest, MonteCarloUpperBoundsAnalyticProxy) {
  // The proxy assumes every error event destroys the state; in reality some
  // Pauli errors act trivially (e.g. Z before measurement in the Z basis)
  // or cancel, so the sampled fidelity must not fall below the proxy by
  // more than sampling noise.
  const Device line6("noise_line6", Platform::kIBM, CouplingMap::line(6),
                     77);
  for (const int n : {3, 5}) {
    const Circuit c = ghz(n);
    const double analytic =
        qrc::noise::analytic_success_probability(c, line6, 6.0);
    const auto mc =
        qrc::noise::simulate_noisy_fidelity(c, line6, 1500, 11, 6.0);
    EXPECT_GE(mc.mean, analytic - 4.0 * mc.std_err - 0.01) << "n=" << n;
  }
}

TEST(NoiseSimTest, ProxyTracksMonteCarloAcrossBenchmarks) {
  // Correlation sanity: circuits ranked by the analytic proxy should rank
  // the same way under Monte-Carlo noise (the reward's load-bearing
  // property for the RL agent).
  const Device line8("noise_line8", Platform::kIBM, CouplingMap::line(8),
                     78);
  std::vector<std::pair<double, double>> points;
  for (const auto family :
       {qrc::bench::BenchmarkFamily::kGhz, qrc::bench::BenchmarkFamily::kQft,
        qrc::bench::BenchmarkFamily::kVqe,
        qrc::bench::BenchmarkFamily::kWstate}) {
    for (const int n : {4, 7}) {
      const Circuit c = qrc::bench::make_benchmark(family, n, 1);
      const double analytic =
          qrc::noise::analytic_success_probability(c, line8, 2.0);
      const auto mc =
          qrc::noise::simulate_noisy_fidelity(c, line8, 400, 13, 2.0);
      points.emplace_back(analytic, mc.mean);
    }
  }
  // Pairwise order agreement (Kendall-style) above chance.
  int concordant = 0;
  int comparable = 0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    for (std::size_t j = i + 1; j < points.size(); ++j) {
      if (std::abs(points[i].first - points[j].first) < 0.02) {
        continue;  // too close to rank reliably
      }
      ++comparable;
      if ((points[i].first < points[j].first) ==
          (points[i].second < points[j].second)) {
        ++concordant;
      }
    }
  }
  ASSERT_GT(comparable, 5);
  EXPECT_GE(static_cast<double>(concordant) / comparable, 0.8);
}

}  // namespace
