// Tests for the circuit IR: gate metadata and matrices, Operation/Circuit
// invariants, DAG links, statevector simulation, equivalence checking and
// QASM round-trips.

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "ir/circuit.hpp"
#include "ir/dag.hpp"
#include "ir/gate.hpp"
#include "ir/qasm.hpp"
#include "ir/sim.hpp"
#include "la/weyl.hpp"

namespace {

using qrc::ir::Circuit;
using qrc::ir::GateKind;
using qrc::ir::Operation;
using qrc::ir::Statevector;
using qrc::la::cplx;
using qrc::la::kPi;

// ---------------------------------------------------------------- Gate ----

TEST(GateTest, NamesRoundTrip) {
  for (int i = 0; i < qrc::ir::kNumGateKinds; ++i) {
    const auto kind = static_cast<GateKind>(i);
    const auto back = qrc::ir::gate_from_name(qrc::ir::gate_name(kind));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, kind);
  }
}

TEST(GateTest, UnknownNameRejected) {
  EXPECT_FALSE(qrc::ir::gate_from_name("notagate").has_value());
}

TEST(GateTest, AllSingleQubitMatricesUnitary) {
  std::mt19937_64 rng(2);
  std::uniform_real_distribution<double> ang(-kPi, kPi);
  for (int i = 0; i < qrc::ir::kNumGateKinds; ++i) {
    const auto kind = static_cast<GateKind>(i);
    const auto& info = qrc::ir::gate_info(kind);
    if (!info.is_unitary || info.num_qubits != 1) {
      continue;
    }
    std::vector<double> params;
    for (int p = 0; p < info.num_params; ++p) {
      params.push_back(ang(rng));
    }
    EXPECT_TRUE(qrc::ir::gate_matrix_1q(kind, params).is_unitary())
        << info.name;
  }
}

TEST(GateTest, AllTwoQubitMatricesUnitary) {
  std::mt19937_64 rng(3);
  std::uniform_real_distribution<double> ang(-kPi, kPi);
  for (int i = 0; i < qrc::ir::kNumGateKinds; ++i) {
    const auto kind = static_cast<GateKind>(i);
    const auto& info = qrc::ir::gate_info(kind);
    if (!info.is_unitary || info.num_qubits != 2) {
      continue;
    }
    std::vector<double> params;
    for (int p = 0; p < info.num_params; ++p) {
      params.push_back(ang(rng));
    }
    EXPECT_TRUE(qrc::ir::gate_matrix_2q(kind, params).is_unitary())
        << info.name;
  }
}

TEST(GateTest, DiagonalFlagMatchesMatrix) {
  std::mt19937_64 rng(5);
  std::uniform_real_distribution<double> ang(-kPi, kPi);
  for (int i = 0; i < qrc::ir::kNumGateKinds; ++i) {
    const auto kind = static_cast<GateKind>(i);
    const auto& info = qrc::ir::gate_info(kind);
    if (!info.is_unitary || !info.is_diagonal || info.num_qubits > 2) {
      continue;
    }
    std::vector<double> params;
    for (int p = 0; p < info.num_params; ++p) {
      params.push_back(ang(rng));
    }
    if (info.num_qubits == 1) {
      const auto m = qrc::ir::gate_matrix_1q(kind, params);
      EXPECT_NEAR(std::abs(m(0, 1)), 0.0, 1e-12) << info.name;
      EXPECT_NEAR(std::abs(m(1, 0)), 0.0, 1e-12) << info.name;
    } else {
      const auto m = qrc::ir::gate_matrix_2q(kind, params);
      for (int r = 0; r < 4; ++r) {
        for (int c = 0; c < 4; ++c) {
          if (r != c) {
            EXPECT_NEAR(std::abs(m(r, c)), 0.0, 1e-12) << info.name;
          }
        }
      }
    }
  }
}

TEST(GateTest, InverseComposesToIdentity1q) {
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> ang(-kPi, kPi);
  for (int i = 0; i < qrc::ir::kNumGateKinds; ++i) {
    const auto kind = static_cast<GateKind>(i);
    const auto& info = qrc::ir::gate_info(kind);
    if (!info.is_unitary || info.num_qubits != 1) {
      continue;
    }
    std::vector<double> params;
    for (int p = 0; p < info.num_params; ++p) {
      params.push_back(ang(rng));
    }
    const auto inv = qrc::ir::gate_inverse(kind, params);
    const auto m = qrc::ir::gate_matrix_1q(kind, params);
    const auto mi = qrc::ir::gate_matrix_1q(
        inv.kind,
        std::span<const double>(inv.params.data(),
                                static_cast<std::size_t>(
                                    qrc::ir::gate_info(inv.kind).num_params)));
    EXPECT_TRUE((m * mi).equal_up_to_phase(qrc::la::Mat2::identity(), 1e-9))
        << info.name;
  }
}

TEST(GateTest, InverseComposesToIdentity2q) {
  std::mt19937_64 rng(11);
  std::uniform_real_distribution<double> ang(-kPi, kPi);
  for (int i = 0; i < qrc::ir::kNumGateKinds; ++i) {
    const auto kind = static_cast<GateKind>(i);
    const auto& info = qrc::ir::gate_info(kind);
    if (!info.is_unitary || info.num_qubits != 2 ||
        kind == GateKind::kISWAP) {
      continue;  // iSWAP handled by Circuit::inverse specially
    }
    std::vector<double> params;
    for (int p = 0; p < info.num_params; ++p) {
      params.push_back(ang(rng));
    }
    const auto inv = qrc::ir::gate_inverse(kind, params);
    const auto m = qrc::ir::gate_matrix_2q(kind, params);
    const auto mi = qrc::ir::gate_matrix_2q(
        inv.kind,
        std::span<const double>(inv.params.data(),
                                static_cast<std::size_t>(
                                    qrc::ir::gate_info(inv.kind).num_params)));
    EXPECT_TRUE((m * mi).equal_up_to_phase(qrc::la::Mat4::identity(), 1e-9))
        << info.name;
  }
}

TEST(GateTest, EcrLocallyEquivalentToCx) {
  const auto ecr = qrc::ir::gate_matrix_2q(GateKind::kECR, {});
  EXPECT_TRUE(ecr.is_unitary());
  EXPECT_TRUE(qrc::la::local_invariants(ecr).approx_equal(
      qrc::la::local_invariants(qrc::la::cx01_mat()), 1e-6));
}

TEST(GateTest, RxxAtHalfPiLocallyEquivalentToCx) {
  const std::array<double, 1> half_pi{kPi / 2.0};
  const auto rxx = qrc::ir::gate_matrix_2q(GateKind::kRXX, half_pi);
  EXPECT_TRUE(qrc::la::local_invariants(rxx).approx_equal(
      qrc::la::local_invariants(qrc::la::cx01_mat()), 1e-6));
}

TEST(GateTest, IdentityDetection) {
  const std::array<double, 1> zero{0.0};
  const std::array<double, 1> two_pi{2.0 * kPi};
  const std::array<double, 1> half{0.5};
  EXPECT_TRUE(qrc::ir::gate_is_identity(GateKind::kRZ, zero));
  EXPECT_TRUE(qrc::ir::gate_is_identity(GateKind::kRZ, two_pi));
  EXPECT_FALSE(qrc::ir::gate_is_identity(GateKind::kRZ, half));
  EXPECT_FALSE(qrc::ir::gate_is_identity(GateKind::kX, {}));
}

// ----------------------------------------------------------- Operation ----

TEST(OperationTest, RejectsWrongArity) {
  const std::array<int, 1> one{0};
  EXPECT_THROW(Operation(GateKind::kCX, one), std::invalid_argument);
}

TEST(OperationTest, RejectsWrongParamCount) {
  const std::array<int, 1> one{0};
  EXPECT_THROW(Operation(GateKind::kRZ, one), std::invalid_argument);
}

TEST(OperationTest, RejectsDuplicateQubits) {
  const std::array<int, 2> dup{1, 1};
  EXPECT_THROW(Operation(GateKind::kCX, dup), std::invalid_argument);
}

TEST(OperationTest, OverlapDetection) {
  const std::array<int, 2> q01{0, 1};
  const std::array<int, 2> q12{1, 2};
  const std::array<int, 2> q23{2, 3};
  const Operation a(GateKind::kCX, q01);
  const Operation b(GateKind::kCX, q12);
  const Operation c(GateKind::kCX, q23);
  EXPECT_TRUE(a.overlaps(b));
  EXPECT_FALSE(a.overlaps(c));
}

// ------------------------------------------------------------- Circuit ----

TEST(CircuitTest, AppendValidatesRange) {
  Circuit c(2);
  EXPECT_THROW(c.h(2), std::out_of_range);
  EXPECT_THROW(c.cx(0, 5), std::out_of_range);
}

TEST(CircuitTest, DepthOfSerialAndParallel) {
  Circuit serial(1);
  serial.h(0);
  serial.x(0);
  serial.z(0);
  EXPECT_EQ(serial.depth(), 3);

  Circuit parallel(3);
  parallel.h(0);
  parallel.h(1);
  parallel.h(2);
  EXPECT_EQ(parallel.depth(), 1);
}

TEST(CircuitTest, DepthWithTwoQubitGates) {
  Circuit c(3);
  c.h(0);
  c.cx(0, 1);
  c.cx(1, 2);
  EXPECT_EQ(c.depth(), 3);
  EXPECT_EQ(c.multi_qubit_depth(), 2);
}

TEST(CircuitTest, BarrierSynchronisesWithoutLevel) {
  Circuit c(2);
  c.h(0);
  c.barrier();
  c.h(1);
  // h(1) must start after the barrier, i.e. at level of h(0).
  EXPECT_EQ(c.depth(), 2);
}

TEST(CircuitTest, GateCountsExcludeNonUnitary) {
  Circuit c(2);
  c.h(0);
  c.cx(0, 1);
  c.measure_all();
  c.barrier();
  EXPECT_EQ(c.gate_count(), 2);
  EXPECT_EQ(c.two_qubit_gate_count(), 1);
  const auto counts = c.count_ops();
  EXPECT_EQ(counts.at("h"), 1);
  EXPECT_EQ(counts.at("cx"), 1);
  EXPECT_EQ(counts.at("measure"), 2);
}

TEST(CircuitTest, InverseIsUnitaryInverse) {
  std::mt19937_64 rng(13);
  std::uniform_real_distribution<double> ang(-kPi, kPi);
  Circuit c(3);
  c.h(0);
  c.rz(ang(rng), 1);
  c.cx(0, 1);
  c.u3(ang(rng), ang(rng), ang(rng), 2);
  c.iswap(1, 2);
  c.t(0);
  c.ecr(2, 0);
  c.rxx(ang(rng), 0, 1);

  Circuit combined(3);
  combined.extend(c);
  combined.extend(c.inverse());

  Circuit empty(3);
  EXPECT_TRUE(qrc::ir::circuits_equivalent(combined, empty));
}

TEST(CircuitTest, RemapMovesOperands) {
  Circuit c(2);
  c.h(0);
  c.cx(0, 1);
  const Circuit r = c.remapped({3, 1}, 4);
  EXPECT_EQ(r.num_qubits(), 4);
  EXPECT_EQ(r.ops()[0].qubit(0), 3);
  EXPECT_EQ(r.ops()[1].qubit(0), 3);
  EXPECT_EQ(r.ops()[1].qubit(1), 1);
}

TEST(CircuitTest, ActiveQubits) {
  Circuit c(5);
  c.h(1);
  c.cx(1, 3);
  const auto active = c.active_qubits();
  ASSERT_EQ(active.size(), 2U);
  EXPECT_EQ(active[0], 1);
  EXPECT_EQ(active[1], 3);
}

TEST(CircuitTest, RemoveOpsKeepsOrder) {
  Circuit c(1);
  c.h(0);
  c.x(0);
  c.z(0);
  c.remove_ops({false, true, false});
  ASSERT_EQ(c.size(), 2U);
  EXPECT_EQ(c.ops()[0].kind(), GateKind::kH);
  EXPECT_EQ(c.ops()[1].kind(), GateKind::kZ);
}

// ----------------------------------------------------------------- DAG ----

TEST(DagTest, LinearChainLinks) {
  Circuit c(2);
  c.h(0);       // 0
  c.cx(0, 1);   // 1
  c.x(1);       // 2
  const qrc::ir::DagCircuit dag(c);
  EXPECT_EQ(dag.first_on_qubit(0), 0);
  EXPECT_EQ(dag.first_on_qubit(1), 1);
  EXPECT_EQ(dag.next_on_qubit(0, 0), 1);
  EXPECT_EQ(dag.prev_on_qubit(1, 0), 0);
  EXPECT_EQ(dag.prev_on_qubit(1, 1), -1);
  EXPECT_EQ(dag.next_on_qubit(1, 1), 2);
  EXPECT_EQ(dag.last_on_qubit(1), 2);
  EXPECT_EQ(dag.next_on_qubit(2, 1), -1);
}

TEST(DagTest, BarrierBlocksAllQubits) {
  Circuit c(2);
  c.h(0);      // 0
  c.barrier(); // 1
  c.x(1);      // 2
  const qrc::ir::DagCircuit dag(c);
  EXPECT_EQ(dag.next_on_qubit(0, 0), 1);
  EXPECT_EQ(dag.prev_on_qubit(2, 1), 1);
  EXPECT_EQ(dag.prev_on_qubit(1, 0), 0);
  EXPECT_EQ(dag.prev_on_qubit(1, 1), -1);
  EXPECT_EQ(dag.next_on_qubit(1, 1), 2);
}

// ----------------------------------------------------------- Simulator ----

TEST(SimTest, BellState) {
  Circuit c(2);
  c.h(0);
  c.cx(0, 1);
  Statevector s(2);
  s.apply(c);
  const auto& amp = s.amplitudes();
  const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
  EXPECT_NEAR(std::abs(amp[0]), inv_sqrt2, 1e-12);
  EXPECT_NEAR(std::abs(amp[3]), inv_sqrt2, 1e-12);
  EXPECT_NEAR(std::abs(amp[1]), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(amp[2]), 0.0, 1e-12);
}

TEST(SimTest, GhzState) {
  Circuit c(4);
  c.h(0);
  for (int i = 0; i < 3; ++i) {
    c.cx(i, i + 1);
  }
  Statevector s(4);
  s.apply(c);
  const auto& amp = s.amplitudes();
  EXPECT_NEAR(std::abs(amp[0]), 1.0 / std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(std::abs(amp[15]), 1.0 / std::sqrt(2.0), 1e-12);
}

TEST(SimTest, CcxTruthTable) {
  // |110> (q0=0? operands: ccx(0,1,2) with controls 0,1, target 2).
  Circuit c(3);
  c.x(0);
  c.x(1);
  c.ccx(0, 1, 2);
  Statevector s(3);
  s.apply(c);
  // Expect |111> = index 7.
  EXPECT_NEAR(std::abs(s.amplitudes()[7]), 1.0, 1e-12);
}

TEST(SimTest, CswapExchangesTargets) {
  // control q0 = 1, q1 = 1, q2 = 0 -> after cswap(0,1,2): q1 = 0, q2 = 1.
  Circuit c(3);
  c.x(0);
  c.x(1);
  c.cswap(0, 1, 2);
  Statevector s(3);
  s.apply(c);
  // Expect |101> = q2=1,q1=0,q0=1 = index 5.
  EXPECT_NEAR(std::abs(s.amplitudes()[5]), 1.0, 1e-12);
}

TEST(SimTest, SwapEqualsThreeCx) {
  Circuit a(2);
  a.swap(0, 1);
  Circuit b(2);
  b.cx(0, 1);
  b.cx(1, 0);
  b.cx(0, 1);
  EXPECT_TRUE(qrc::ir::circuits_equivalent(a, b));
}

TEST(SimTest, HZHEqualsX) {
  Circuit a(1);
  a.h(0);
  a.z(0);
  a.h(0);
  Circuit b(1);
  b.x(0);
  EXPECT_TRUE(qrc::ir::circuits_equivalent(a, b));
}

TEST(SimTest, InequivalentCircuitsDetected) {
  Circuit a(2);
  a.cx(0, 1);
  Circuit b(2);
  b.cx(1, 0);
  EXPECT_FALSE(qrc::ir::circuits_equivalent(a, b));
}

TEST(SimTest, GlobalPhaseConsistencyEnforced) {
  // rz(t) differs from p(t) by a global phase: still equivalent.
  Circuit a(1);
  a.rz(0.7, 0);
  Circuit b(1);
  b.p(0.7, 0);
  EXPECT_TRUE(qrc::ir::circuits_equivalent(a, b));
  // But s followed by rz(-pi/2) is identity only up to phase; compare
  // against true identity.
  Circuit c(1);
  c.s(0);
  c.rz(-kPi / 2.0, 0);
  Circuit empty(1);
  EXPECT_TRUE(qrc::ir::circuits_equivalent(c, empty));
}

TEST(SimTest, PermutationAwareEquivalence) {
  // The permutation semantics match routing: U_b == P * U_a where P
  // relabels output qubit q of `a` to final_permutation[q]. A circuit that
  // ends in an explicit SWAP is equivalent to the swap-free circuit under
  // the {1, 0} permutation.
  Circuit a(2);
  a.h(0);
  a.t(1);
  Circuit b(2);
  b.h(0);
  b.t(1);
  b.swap(0, 1);
  EXPECT_FALSE(qrc::ir::circuits_equivalent(a, b));
  EXPECT_TRUE(qrc::ir::circuits_equivalent(a, b, 4, 12345, {1, 0}));
}

TEST(SimTest, MappedEquivalenceWithLayout) {
  // Logical bell pair on (0, 1) mapped to physical (2, 0) of a 3-qubit
  // device, no routing (final layout = initial layout).
  Circuit logical(2);
  logical.h(0);
  logical.cx(0, 1);
  Circuit physical(3);
  physical.h(2);
  physical.cx(2, 0);
  EXPECT_TRUE(qrc::ir::mapped_circuit_equivalent(logical, physical, {2, 0},
                                                 {2, 0}));
  EXPECT_FALSE(qrc::ir::mapped_circuit_equivalent(logical, physical, {0, 1},
                                                  {0, 1}));
}

TEST(SimTest, RandomStateIsNormalised) {
  const Statevector s = Statevector::random(6, 99);
  EXPECT_NEAR(s.norm(), 1.0, 1e-12);
}

TEST(SimTest, NonUnitaryOpsSkippedSilently) {
  // Only measure/barrier/reset may be silently ignored — they are the
  // known non-unitary circuit elements and equivalence checking concerns
  // the unitary part. Everything else must throw (see the next test).
  Circuit c(2);
  c.h(0);
  c.measure(0);
  c.barrier();
  c.reset(1);
  Statevector with_markers(2);
  with_markers.apply(c);
  Circuit bare(2);
  bare.h(0);
  Statevector reference(2);
  reference.apply(bare);
  EXPECT_NEAR(std::abs(with_markers.inner_product(reference)), 1.0, 1e-12);
}

TEST(SimTest, ApplyMatrixMatchesNamedGates) {
  // The raw-matrix entry points (used by the verifier's conjugated-gate
  // application) must agree with the GateKind path.
  Statevector via_gate(3);
  Circuit c(3);
  c.h(1);
  c.cx(1, 2);
  via_gate.apply(c);
  Statevector via_matrix(3);
  via_matrix.apply_matrix(qrc::la::h_mat(), 1);
  via_matrix.apply_matrix(
      qrc::ir::gate_matrix_2q(qrc::ir::GateKind::kCX, {}), 1, 2);
  EXPECT_NEAR(std::abs(via_gate.inner_product(via_matrix)), 1.0, 1e-12);
}

TEST(SimTest, PermuteAndEmbedArePublic) {
  // permute_qubits: qubit q of the input becomes qubit perm[q].
  Statevector s(2);
  Circuit c(2);
  c.x(0);
  s.apply(c);  // |01> = index 1
  const Statevector permuted = qrc::ir::permute_qubits(s, {1, 0});
  EXPECT_NEAR(std::abs(permuted.amplitudes()[2]), 1.0, 1e-12);
  // embed_state: logical qubit 0 at physical wire 2 of a 3-qubit register.
  const Statevector embedded = qrc::ir::embed_state(
      s, 3, std::vector<int>{2, 0});
  EXPECT_NEAR(std::abs(embedded.amplitudes()[4]), 1.0, 1e-12);
}

// ---------------------------------------------------------------- QASM ----

TEST(QasmTest, RoundTripSmallCircuit) {
  Circuit c(3, "demo");
  c.h(0);
  c.cx(0, 1);
  c.rz(kPi / 3.0, 2);
  c.u3(0.1, 0.2, 0.3, 1);
  c.ccx(0, 1, 2);
  c.swap(0, 2);
  c.measure_all();
  const std::string text = qrc::ir::to_qasm(c);
  const Circuit back = qrc::ir::from_qasm(text);
  ASSERT_EQ(back.num_qubits(), 3);
  ASSERT_EQ(back.size(), c.size());
  EXPECT_TRUE(qrc::ir::circuits_equivalent(c, back));
}

TEST(QasmTest, ParsesPiExpressions) {
  const std::string text = R"(OPENQASM 2.0;
include "qelib1.inc";
qreg q[1];
rz(pi/2) q[0];
rz(-pi/4) q[0];
rz(2*pi/3) q[0];
rz((pi+1)/2) q[0];
)";
  const Circuit c = qrc::ir::from_qasm(text);
  ASSERT_EQ(c.size(), 4U);
  EXPECT_NEAR(c.ops()[0].param(0), kPi / 2.0, 1e-12);
  EXPECT_NEAR(c.ops()[1].param(0), -kPi / 4.0, 1e-12);
  EXPECT_NEAR(c.ops()[2].param(0), 2.0 * kPi / 3.0, 1e-12);
  EXPECT_NEAR(c.ops()[3].param(0), (kPi + 1.0) / 2.0, 1e-12);
}

TEST(QasmTest, ParsesAliases) {
  const std::string text = R"(OPENQASM 2.0;
qreg q[2];
u1(0.5) q[0];
u2(0.1,0.2) q[0];
u(0.1,0.2,0.3) q[1];
cnot q[0],q[1];
)";
  const Circuit c = qrc::ir::from_qasm(text);
  ASSERT_EQ(c.size(), 4U);
  EXPECT_EQ(c.ops()[0].kind(), GateKind::kP);
  EXPECT_EQ(c.ops()[1].kind(), GateKind::kU3);
  EXPECT_NEAR(c.ops()[1].param(0), kPi / 2.0, 1e-12);
  EXPECT_EQ(c.ops()[2].kind(), GateKind::kU3);
  EXPECT_EQ(c.ops()[3].kind(), GateKind::kCX);
}

TEST(QasmTest, RejectsUnknownGate) {
  const std::string text = "qreg q[1];\nfoo q[0];\n";
  EXPECT_THROW((void)qrc::ir::from_qasm(text), std::runtime_error);
}

TEST(QasmTest, IgnoresComments) {
  const std::string text =
      "// header comment\nqreg q[1];\nh q[0]; // apply hadamard\n";
  const Circuit c = qrc::ir::from_qasm(text);
  ASSERT_EQ(c.size(), 1U);
  EXPECT_EQ(c.ops()[0].kind(), GateKind::kH);
}

TEST(QasmTest, ParsesScientificAndSignedParameters) {
  const std::string text = R"(OPENQASM 2.0;
qreg q[1];
rx(1e-3) q[0];
rz(-2.5E+1) q[0];
ry(+0.5) q[0];
rx(1.5e2/3) q[0];
)";
  const Circuit c = qrc::ir::from_qasm(text);
  ASSERT_EQ(c.size(), 4U);
  EXPECT_NEAR(c.ops()[0].param(0), 1e-3, 1e-15);
  EXPECT_NEAR(c.ops()[1].param(0), -25.0, 1e-12);
  EXPECT_NEAR(c.ops()[2].param(0), 0.5, 1e-15);
  EXPECT_NEAR(c.ops()[3].param(0), 50.0, 1e-12);
}

TEST(QasmTest, MalformedIndexReportsLineContext) {
  const std::string text =
      "OPENQASM 2.0;\n"
      "qreg q[2];\n"
      "cx q[zero],q[1];\n";
  try {
    (void)qrc::ir::from_qasm(text);
    FAIL() << "expected a parse error";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("line 3"), std::string::npos) << msg;
    EXPECT_NE(msg.find("cx q[zero]"), std::string::npos) << msg;
  }
}

TEST(QasmTest, RejectsMalformedInputWithoutUncaughtStdExceptions) {
  // Every case used to escape as std::invalid_argument/out_of_range from
  // std::stoi/std::stod (or be silently misparsed); all must surface as a
  // qasm parse error now.
  const std::vector<std::string> bad = {
      "qreg q[two];\n",               // non-numeric register size
      "qreg q[];\n",                  // empty register size
      "qreg q[99999999];\n",          // absurd register size
      "qreg q[2];\nh q[1abc];\n",     // trailing garbage in index
      "qreg q[2];\nh q[-1];\n",       // negative index
      "qreg q[2];\nrx(0.5bad) q[0];\n",   // trailing garbage in param
      "qreg q[2];\nrx(.) q[0];\n",        // no digits
      "qreg q[2];\nrx((pi q[0];\n",       // unbalanced parens
      "qreg q[2];\nmeasure q[x] -> c[0];\n",
  };
  for (const std::string& text : bad) {
    EXPECT_THROW((void)qrc::ir::from_qasm(text), std::runtime_error)
        << text;
  }
}

TEST(QasmTest, ErrorsCarryTheQasmParseErrorPrefix) {
  try {
    (void)qrc::ir::from_qasm("qreg q[1];\nfoo q[0];\n");
    FAIL() << "expected a parse error";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("qasm: parse error at line 2"), std::string::npos)
        << msg;
    EXPECT_NE(msg.find("unknown gate 'foo'"), std::string::npos) << msg;
  }
}

// ----------------------------------------- equality and canonical keys ----

namespace keys {

Circuit sample() {
  Circuit c(3, "sample");
  c.h(0);
  c.rz(0.25, 1);
  c.cx(0, 1);
  c.cx(1, 2);
  c.measure_all();
  return c;
}

}  // namespace keys

TEST(CircuitEqualityTest, DifferentBuildPathsCompareEqual) {
  // Typed helpers vs raw Operation appends must produce equal circuits
  // with equal canonical keys.
  const Circuit a = keys::sample();
  Circuit b(3, "completely different name");
  b.append(Operation(GateKind::kH, std::array<int, 1>{0}));
  b.append(Operation(GateKind::kRZ, std::array<int, 1>{1},
                     std::array<double, 1>{0.25}));
  b.append(Operation(GateKind::kCX, std::array<int, 2>{0, 1}));
  b.append(Operation(GateKind::kCX, std::array<int, 2>{1, 2}));
  for (int q = 0; q < 3; ++q) {
    b.measure(q);
  }
  EXPECT_TRUE(a == b);
  EXPECT_EQ(qrc::ir::canonical_key(a), qrc::ir::canonical_key(b));
}

TEST(CircuitEqualityTest, NameIsMetadataNotContent) {
  Circuit a = keys::sample();
  Circuit b = keys::sample();
  b.set_name("other");
  EXPECT_TRUE(a == b);
  EXPECT_EQ(qrc::ir::canonical_key(a), qrc::ir::canonical_key(b));
}

TEST(CircuitEqualityTest, PerturbationsAreDetected) {
  const Circuit base = keys::sample();
  const std::string base_key = qrc::ir::canonical_key(base);

  // Different gate kind.
  Circuit gate = keys::sample();
  gate.mutable_ops()[0] = Operation(GateKind::kX, std::array<int, 1>{0});
  EXPECT_FALSE(base == gate);
  EXPECT_NE(base_key, qrc::ir::canonical_key(gate));

  // Different operand qubit.
  Circuit qubit = keys::sample();
  qubit.mutable_ops()[2].set_qubit(1, 2);
  EXPECT_FALSE(base == qubit);
  EXPECT_NE(base_key, qrc::ir::canonical_key(qubit));

  // Parameter nudged by one part in 1e12 — still a different circuit.
  Circuit param = keys::sample();
  param.mutable_ops()[1].set_param(0, 0.25 + 2.5e-13);
  EXPECT_FALSE(base == param);
  EXPECT_NE(base_key, qrc::ir::canonical_key(param));

  // Extra trailing op.
  Circuit extra = keys::sample();
  extra.z(2);
  EXPECT_FALSE(base == extra);
  EXPECT_NE(base_key, qrc::ir::canonical_key(extra));

  // Same ops, wider register.
  Circuit wider(4);
  for (const auto& op : base.ops()) {
    wider.append(op);
  }
  EXPECT_FALSE(base == wider);
  EXPECT_NE(base_key, qrc::ir::canonical_key(wider));

  // Global phase participates in both equality and the key.
  Circuit phase = keys::sample();
  phase.add_global_phase(0.5);
  EXPECT_FALSE(base == phase);
  EXPECT_NE(base_key, qrc::ir::canonical_key(phase));
}

TEST(CircuitEqualityTest, SignedZeroParametersShareTheKey) {
  // -0.0 == 0.0, so key equality must agree with operator==.
  Circuit pos(1);
  pos.rz(0.0, 0);
  Circuit neg(1);
  neg.rz(-0.0, 0);
  EXPECT_TRUE(pos == neg);
  EXPECT_EQ(qrc::ir::canonical_key(pos), qrc::ir::canonical_key(neg));
}

TEST(CircuitEqualityTest, QasmRoundTripPreservesTheKey) {
  const Circuit a = keys::sample();
  const Circuit back = qrc::ir::from_qasm(qrc::ir::to_qasm(a));
  EXPECT_TRUE(a == back);
  EXPECT_EQ(qrc::ir::canonical_key(a), qrc::ir::canonical_key(back));
}

TEST(CircuitEqualityTest, EmptyCircuitsOfSameWidthAreEqual) {
  EXPECT_TRUE(Circuit(2) == Circuit(2, "named"));
  EXPECT_FALSE(Circuit(2) == Circuit(3));
  EXPECT_NE(qrc::ir::canonical_key(Circuit(2)),
            qrc::ir::canonical_key(Circuit(3)));
}

}  // namespace
