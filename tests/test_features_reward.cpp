// Tests for Supermarq feature extraction and the three reward functions.

#include <gtest/gtest.h>

#include <cmath>

#include "device/library.hpp"
#include "features/features.hpp"
#include "ir/circuit.hpp"
#include "reward/reward.hpp"

namespace {

using qrc::device::DeviceId;
using qrc::features::extract_features;
using qrc::ir::Circuit;
using qrc::reward::RewardKind;

Circuit ghz(int n) {
  Circuit c(n, "ghz");
  c.h(0);
  for (int i = 0; i + 1 < n; ++i) {
    c.cx(i, i + 1);
  }
  return c;
}

// ------------------------------------------------------------ Features ----

TEST(FeaturesTest, EmptyCircuit) {
  const auto f = extract_features(Circuit(3));
  EXPECT_EQ(f.num_qubits, 0.0);
  EXPECT_EQ(f.depth, 0.0);
  EXPECT_EQ(f.critical_depth, 0.0);
}

TEST(FeaturesTest, DegenerateCircuitsProduceFiniteObservations) {
  // Regression: the parallelism / communication / liveness formulas divide
  // by (n - 1) and depth. Empty, single-qubit and gate-free circuits must
  // produce all-finite (guarded, zeroed) observations instead of NaNs
  // that would silently poison PPO training.
  std::vector<Circuit> degenerate;
  degenerate.emplace_back(0);  // no qubits at all
  degenerate.emplace_back(3);  // qubits but no gates
  Circuit one_qubit(1);        // 1-qubit circuit: n - 1 == 0
  one_qubit.h(0);
  one_qubit.rz(0.25, 0);
  degenerate.push_back(one_qubit);
  Circuit measure_only(2);     // no unitary gates: depth == 0
  measure_only.measure_all();
  degenerate.push_back(measure_only);
  Circuit single_gate(4);      // one gate on a wide register
  single_gate.h(2);
  degenerate.push_back(single_gate);
  for (const Circuit& c : degenerate) {
    const auto obs = extract_features(c).observation();
    for (std::size_t i = 0; i < obs.size(); ++i) {
      EXPECT_TRUE(std::isfinite(obs[i]))
          << "feature " << i << " of circuit '" << c.name() << "' ("
          << c.num_qubits() << " qubits, " << c.size() << " ops)";
      EXPECT_GE(obs[i], 0.0) << "feature " << i;
      EXPECT_LE(obs[i], 1.0) << "feature " << i;
    }
  }
}

TEST(FeaturesTest, GhzChainCommunication) {
  // Chain interaction graph on 5 qubits: 4 edges, density 2*4/(5*4) = 0.4.
  const auto f = extract_features(ghz(5));
  EXPECT_EQ(f.num_qubits, 5.0);
  EXPECT_NEAR(f.program_communication, 0.4, 1e-12);
}

TEST(FeaturesTest, FullyConnectedInteractionGraphDensityOne) {
  Circuit c(4);
  for (int i = 0; i < 4; ++i) {
    for (int j = i + 1; j < 4; ++j) {
      c.cz(i, j);
    }
  }
  const auto f = extract_features(c);
  EXPECT_NEAR(f.program_communication, 1.0, 1e-12);
}

TEST(FeaturesTest, GhzCriticalDepthIsOne) {
  // Every CX in the GHZ chain lies on the critical path.
  const auto f = extract_features(ghz(6));
  EXPECT_NEAR(f.critical_depth, 1.0, 1e-12);
}

TEST(FeaturesTest, ParallelTwoQubitGatesReduceCriticalDepth) {
  // Two disjoint CX at the same level plus a serial chain on (0, 1):
  // longest path has 3 of the 4 CX.
  Circuit c(4);
  c.cx(0, 1);
  c.cx(2, 3);  // off the critical path
  c.cx(0, 1);
  c.cx(0, 1);
  const auto f = extract_features(c);
  EXPECT_NEAR(f.critical_depth, 3.0 / 4.0, 1e-12);
}

TEST(FeaturesTest, EntanglementRatio) {
  Circuit c(2);
  c.h(0);
  c.h(1);
  c.cx(0, 1);
  c.cx(0, 1);
  const auto f = extract_features(c);
  EXPECT_NEAR(f.entanglement_ratio, 0.5, 1e-12);
}

TEST(FeaturesTest, ParallelismOfFullyParallelLayer) {
  // 4 qubits, 4 H gates in one layer: n_g/d = 4, parallelism = 3/3 = 1.
  Circuit c(4);
  for (int q = 0; q < 4; ++q) {
    c.h(q);
  }
  const auto f = extract_features(c);
  EXPECT_NEAR(f.parallelism, 1.0, 1e-12);
}

TEST(FeaturesTest, ParallelismOfSerialCircuitIsZero) {
  Circuit c(2);
  c.h(0);
  c.x(0);
  c.z(0);
  const auto f = extract_features(c);
  EXPECT_NEAR(f.parallelism, 0.0, 1e-12);
}

TEST(FeaturesTest, LivenessFullGridIsOne) {
  Circuit c(2);
  c.h(0);
  c.h(1);
  c.x(0);
  c.x(1);
  const auto f = extract_features(c);
  EXPECT_NEAR(f.liveness, 1.0, 1e-12);
}

TEST(FeaturesTest, LivenessWithIdleQubit) {
  // Qubit 1 idles during levels 2..3: participations = 4 (cx=2, x, x? ) —
  // circuit: cx(0,1); x(0); x(0): levels: cx@1 (q0,q1), x@2, x@3.
  // participations = 2 + 1 + 1 = 4, n*d = 2*3 = 6.
  Circuit c(2);
  c.cx(0, 1);
  c.x(0);
  c.x(0);
  const auto f = extract_features(c);
  EXPECT_NEAR(f.liveness, 4.0 / 6.0, 1e-12);
}

TEST(FeaturesTest, ActiveQubitNormalisationAfterLayout) {
  // Same GHZ circuit embedded on a 127-qubit register: features must match
  // the logical ones (active qubits only).
  const Circuit logical = ghz(5);
  Circuit wide(127);
  wide.h(10);
  for (const int base : {10, 30, 50, 70}) {
    wide.cx(base, base + 20);
  }
  const auto fl = extract_features(logical);
  const auto fw = extract_features(wide);
  EXPECT_EQ(fw.num_qubits, 5.0);
  EXPECT_NEAR(fw.program_communication, fl.program_communication, 1e-12);
}

TEST(FeaturesTest, ObservationIsBounded) {
  Circuit c(20);
  for (int i = 0; i < 19; ++i) {
    c.cx(i, i + 1);
  }
  for (int rep = 0; rep < 100; ++rep) {
    c.h(rep % 20);
  }
  const auto obs = extract_features(c).observation();
  for (const double v : obs) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(FeaturesTest, MeasuresExcludedFromFeatures) {
  Circuit a = ghz(4);
  Circuit b = ghz(4);
  b.measure_all();
  const auto fa = extract_features(a);
  const auto fb = extract_features(b);
  EXPECT_EQ(fa.depth, fb.depth);
  EXPECT_EQ(fa.entanglement_ratio, fb.entanglement_ratio);
  EXPECT_EQ(fa.liveness, fb.liveness);
}

// -------------------------------------------------------------- Reward ----

TEST(RewardTest, EmptyCircuitScoresPerfect) {
  const auto& dev = qrc::device::get_device(DeviceId::kIbmqMontreal);
  EXPECT_NEAR(qrc::reward::expected_fidelity(Circuit(2), dev), 1.0, 1e-12);
}

TEST(RewardTest, FidelityDecreasesWithGateCount) {
  const auto& dev = qrc::device::get_device(DeviceId::kIbmqMontreal);
  Circuit small(2);
  small.cx(0, 1);
  Circuit big(2);
  big.cx(0, 1);
  big.cx(0, 1);
  big.cx(0, 1);
  const double fs = qrc::reward::expected_fidelity(small, dev);
  const double fb = qrc::reward::expected_fidelity(big, dev);
  EXPECT_GT(fs, fb);
  EXPECT_GT(fs, 0.9);
  EXPECT_GT(fb, 0.5);
}

TEST(RewardTest, UncoupledGateZeroesFidelity) {
  const auto& dev = qrc::device::get_device(DeviceId::kIbmqMontreal);
  Circuit c(27);
  c.cx(0, 26);  // far apart on the heavy hex
  EXPECT_EQ(qrc::reward::expected_fidelity(c, dev), 0.0);
}

TEST(RewardTest, WiderThanDeviceZeroesFidelity) {
  const auto& lucy = qrc::device::get_device(DeviceId::kOqcLucy);
  EXPECT_EQ(qrc::reward::expected_fidelity(Circuit(20), lucy), 0.0);
}

TEST(RewardTest, ReadoutCountsAgainstFidelity) {
  const auto& dev = qrc::device::get_device(DeviceId::kIbmqMontreal);
  Circuit bare(3);
  bare.cx(0, 1);
  Circuit measured = bare;
  measured.measure_all();
  EXPECT_GT(qrc::reward::expected_fidelity(bare, dev),
            qrc::reward::expected_fidelity(measured, dev));
}

TEST(RewardTest, CriticalDepthRewardOfSerialChainIsZero) {
  EXPECT_NEAR(qrc::reward::critical_depth_reward(ghz(5)), 0.0, 1e-12);
}

TEST(RewardTest, CriticalDepthRewardNoTwoQubitGatesIsOne) {
  Circuit c(3);
  c.h(0);
  c.h(1);
  EXPECT_NEAR(qrc::reward::critical_depth_reward(c), 1.0, 1e-12);
}

TEST(RewardTest, CombinationIsMeanOfParts) {
  const auto& dev = qrc::device::get_device(DeviceId::kIonqHarmony);
  Circuit c(3);
  c.h(0);
  c.rxx(0.5, 0, 1);
  c.rxx(0.5, 1, 2);
  const double f = qrc::reward::expected_fidelity(c, dev);
  const double cd = qrc::reward::critical_depth_reward(c);
  EXPECT_NEAR(qrc::reward::combination_reward(c, dev), (f + cd) / 2.0, 1e-12);
}

TEST(RewardTest, DispatchMatchesDirectCalls) {
  const auto& dev = qrc::device::get_device(DeviceId::kIonqHarmony);
  const Circuit c = ghz(4);
  EXPECT_EQ(qrc::reward::compute_reward(RewardKind::kFidelity, c, dev),
            qrc::reward::expected_fidelity(c, dev));
  EXPECT_EQ(qrc::reward::compute_reward(RewardKind::kCriticalDepth, c, dev),
            qrc::reward::critical_depth_reward(c));
  EXPECT_EQ(qrc::reward::compute_reward(RewardKind::kCombination, c, dev),
            qrc::reward::combination_reward(c, dev));
}

TEST(RewardTest, AllRewardsBounded) {
  const auto& dev = qrc::device::get_device(DeviceId::kIbmqWashington);
  const Circuit c = ghz(10);
  for (const auto kind :
       {RewardKind::kFidelity, RewardKind::kCriticalDepth,
        RewardKind::kCombination, RewardKind::kGateCount,
        RewardKind::kDepth}) {
    const double r = qrc::reward::compute_reward(kind, c, dev);
    EXPECT_GE(r, 0.0);
    EXPECT_LE(r, 1.0);
  }
}

TEST(RewardTest, GateCountRewardDecreasesWithGates) {
  Circuit small(3);
  small.h(0);
  Circuit big = small;
  big.cx(0, 1);
  big.cx(1, 2);
  EXPECT_GT(qrc::reward::gate_count_reward(small),
            qrc::reward::gate_count_reward(big));
  // Two-qubit gates cost more than single-qubit gates.
  Circuit one_cx(3);
  one_cx.cx(0, 1);
  Circuit one_h(3);
  one_h.h(0);
  EXPECT_LT(qrc::reward::gate_count_reward(one_cx),
            qrc::reward::gate_count_reward(one_h));
}

TEST(RewardTest, DepthRewardPrefersParallelCircuits) {
  Circuit serial(2);
  serial.h(0);
  serial.x(0);
  serial.z(0);
  Circuit parallel(3);
  parallel.h(0);
  parallel.x(1);
  parallel.z(2);
  EXPECT_GT(qrc::reward::depth_reward(parallel),
            qrc::reward::depth_reward(serial));
  EXPECT_NEAR(qrc::reward::depth_reward(Circuit(2)), 1.0, 1e-12);
}

}  // namespace
