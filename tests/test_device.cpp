// Tests for coupling maps, device models, native gate sets and synthetic
// calibration.

#include <gtest/gtest.h>

#include "device/coupling_map.hpp"
#include "device/device.hpp"
#include "device/library.hpp"

namespace {

using qrc::device::CouplingMap;
using qrc::device::Device;
using qrc::device::DeviceId;
using qrc::device::Platform;
using qrc::ir::Circuit;
using qrc::ir::GateKind;

// --------------------------------------------------------- CouplingMap ----

TEST(CouplingMapTest, LineDistances) {
  const CouplingMap m = CouplingMap::line(5);
  EXPECT_EQ(m.distance(0, 4), 4);
  EXPECT_EQ(m.distance(2, 2), 0);
  EXPECT_TRUE(m.are_coupled(1, 2));
  EXPECT_FALSE(m.are_coupled(0, 2));
  EXPECT_TRUE(m.connected());
}

TEST(CouplingMapTest, RingWrapsAround) {
  const CouplingMap m = CouplingMap::ring(8);
  EXPECT_EQ(m.distance(0, 7), 1);
  EXPECT_EQ(m.distance(0, 4), 4);
}

TEST(CouplingMapTest, GridDistancesAreManhattan) {
  const CouplingMap m = CouplingMap::grid(3, 4);
  // (0,0) -> (2,3): 2 + 3 = 5 hops.
  EXPECT_EQ(m.distance(0, 11), 5);
}

TEST(CouplingMapTest, FullyConnectedDistanceOne) {
  const CouplingMap m = CouplingMap::fully_connected(6);
  for (int a = 0; a < 6; ++a) {
    for (int b = 0; b < 6; ++b) {
      if (a != b) {
        EXPECT_EQ(m.distance(a, b), 1);
      }
    }
  }
}

TEST(CouplingMapTest, ShortestPathEndpointsAndAdjacency) {
  const CouplingMap m = CouplingMap::grid(3, 3);
  const auto path = m.shortest_path(0, 8);
  EXPECT_EQ(path.front(), 0);
  EXPECT_EQ(path.back(), 8);
  EXPECT_EQ(static_cast<int>(path.size()), m.distance(0, 8) + 1);
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    EXPECT_TRUE(m.are_coupled(path[i], path[i + 1]));
  }
}

TEST(CouplingMapTest, RejectsBadEdges) {
  EXPECT_THROW(CouplingMap(2, {{0, 0}}), std::invalid_argument);
  EXPECT_THROW(CouplingMap(2, {{0, 5}}), std::invalid_argument);
  EXPECT_THROW(CouplingMap(3, {{0, 1}, {1, 0}}), std::invalid_argument);
}

TEST(CouplingMapTest, HeavyHexEagleShape) {
  const CouplingMap m = CouplingMap::heavy_hex(7, 15);
  EXPECT_EQ(m.num_qubits(), 127);
  EXPECT_TRUE(m.connected());
  EXPECT_TRUE(m.no_isolated_qubits());
  // Heavy-hex degree never exceeds 3.
  for (int q = 0; q < m.num_qubits(); ++q) {
    EXPECT_LE(m.neighbors(q).size(), 3U) << "qubit " << q;
  }
}

TEST(CouplingMapTest, OctagonalLatticeShape) {
  const CouplingMap m = CouplingMap::octagonal(2, 5);
  EXPECT_EQ(m.num_qubits(), 80);
  EXPECT_TRUE(m.connected());
  // Ring edges + inter-octagon couplers: degree between 2 and 4.
  for (int q = 0; q < m.num_qubits(); ++q) {
    EXPECT_GE(m.neighbors(q).size(), 2U);
    EXPECT_LE(m.neighbors(q).size(), 4U);
  }
}

// -------------------------------------------------------------- Device ----

TEST(DeviceTest, AllFiveDevicesWellFormed) {
  for (const Device* d : qrc::device::all_devices()) {
    EXPECT_TRUE(d->coupling().connected()) << d->name();
    EXPECT_TRUE(d->coupling().no_isolated_qubits()) << d->name();
    EXPECT_EQ(d->calibration().readout_error.size(),
              static_cast<std::size_t>(d->num_qubits()))
        << d->name();
    EXPECT_EQ(d->calibration().two_qubit_error.size(),
              d->coupling().edges().size())
        << d->name();
  }
}

TEST(DeviceTest, PaperQubitCounts) {
  EXPECT_EQ(qrc::device::get_device(DeviceId::kIbmqMontreal).num_qubits(), 27);
  EXPECT_EQ(qrc::device::get_device(DeviceId::kIbmqWashington).num_qubits(),
            127);
  EXPECT_EQ(qrc::device::get_device(DeviceId::kRigettiAspenM2).num_qubits(),
            80);
  EXPECT_EQ(qrc::device::get_device(DeviceId::kIonqHarmony).num_qubits(), 11);
  EXPECT_EQ(qrc::device::get_device(DeviceId::kOqcLucy).num_qubits(), 8);
}

TEST(DeviceTest, CalibrationIsDeterministic) {
  const Device& a = qrc::device::get_device(DeviceId::kIbmqMontreal);
  const Device& b = qrc::device::device_by_name("ibmq_montreal");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a.calibration().single_qubit_error,
            b.calibration().single_qubit_error);
}

TEST(DeviceTest, ErrorMagnitudesInRealisticBands) {
  for (const Device* d : qrc::device::all_devices()) {
    for (const double e : d->calibration().single_qubit_error) {
      EXPECT_GT(e, 1e-5) << d->name();
      EXPECT_LT(e, 1e-2) << d->name();
    }
    for (const auto& [edge, e] : d->calibration().two_qubit_error) {
      EXPECT_GT(e, 1e-3) << d->name();
      EXPECT_LT(e, 0.1) << d->name();
    }
    for (const double e : d->calibration().readout_error) {
      EXPECT_GT(e, 1e-3) << d->name();
      EXPECT_LT(e, 0.2) << d->name();
    }
  }
}

TEST(DeviceTest, TwoQubitErrorsDominateSingleQubit) {
  for (const Device* d : qrc::device::all_devices()) {
    double mean1 = 0.0;
    for (const double e : d->calibration().single_qubit_error) {
      mean1 += e;
    }
    mean1 /= static_cast<double>(d->calibration().single_qubit_error.size());
    double mean2 = 0.0;
    for (const auto& [edge, e] : d->calibration().two_qubit_error) {
      mean2 += e;
    }
    mean2 /= static_cast<double>(d->calibration().two_qubit_error.size());
    EXPECT_GT(mean2, 5.0 * mean1) << d->name();
  }
}

TEST(DeviceTest, NativeGateSets) {
  const Device& ibm = qrc::device::get_device(DeviceId::kIbmqMontreal);
  EXPECT_TRUE(ibm.is_native(GateKind::kCX));
  EXPECT_TRUE(ibm.is_native(GateKind::kRZ));
  EXPECT_TRUE(ibm.is_native(GateKind::kSX));
  EXPECT_FALSE(ibm.is_native(GateKind::kH));
  EXPECT_FALSE(ibm.is_native(GateKind::kCZ));
  EXPECT_TRUE(ibm.is_native(GateKind::kMeasure));
  EXPECT_TRUE(ibm.is_native(GateKind::kBarrier));

  const Device& ionq = qrc::device::get_device(DeviceId::kIonqHarmony);
  EXPECT_TRUE(ionq.is_native(GateKind::kRXX));
  EXPECT_FALSE(ionq.is_native(GateKind::kCX));

  const Device& oqc = qrc::device::get_device(DeviceId::kOqcLucy);
  EXPECT_TRUE(oqc.is_native(GateKind::kECR));
  EXPECT_FALSE(oqc.is_native(GateKind::kCX));

  const Device& rigetti = qrc::device::get_device(DeviceId::kRigettiAspenM2);
  EXPECT_TRUE(rigetti.is_native(GateKind::kCZ));
  EXPECT_TRUE(rigetti.is_native(GateKind::kRX));
  EXPECT_FALSE(rigetti.is_native(GateKind::kSX));
}

TEST(DeviceTest, CircuitNativeCheck) {
  const Device& ibm = qrc::device::get_device(DeviceId::kIbmqMontreal);
  Circuit native(2);
  native.rz(0.5, 0);
  native.sx(0);
  native.cx(0, 1);
  native.measure_all();
  EXPECT_TRUE(ibm.circuit_is_native(native));

  Circuit foreign(2);
  foreign.h(0);
  EXPECT_FALSE(ibm.circuit_is_native(foreign));
}

TEST(DeviceTest, TopologyCheck) {
  const Device& ibm = qrc::device::get_device(DeviceId::kIbmqMontreal);
  Circuit ok(27);
  ok.cx(0, 1);  // coupled on montreal
  EXPECT_TRUE(ibm.circuit_respects_topology(ok));

  Circuit bad(27);
  bad.cx(0, 2);  // not coupled
  EXPECT_FALSE(ibm.circuit_respects_topology(bad));

  Circuit wide(2);
  wide.cx(0, 1);
  EXPECT_TRUE(qrc::device::get_device(DeviceId::kIonqHarmony)
                  .circuit_respects_topology(wide));

  Circuit three(27);
  three.ccx(0, 1, 4);
  EXPECT_FALSE(ibm.circuit_respects_topology(three));
}

TEST(DeviceTest, OpErrorLookups) {
  const Device& ibm = qrc::device::get_device(DeviceId::kIbmqMontreal);
  Circuit c(27);
  c.sx(3);
  c.cx(0, 1);
  c.measure(5);
  const double e1 = ibm.op_error(c.ops()[0]);
  const double e2 = ibm.op_error(c.ops()[1]);
  const double em = ibm.op_error(c.ops()[2]);
  EXPECT_GT(e1, 0.0);
  EXPECT_GT(e2, e1);
  EXPECT_GT(em, 0.0);
  // Uncoupled pair: certain failure.
  Circuit bad(27);
  bad.cx(0, 2);
  EXPECT_EQ(ibm.op_error(bad.ops()[0]), 1.0);
}

TEST(DeviceTest, DeviceByNameRejectsUnknown) {
  EXPECT_THROW((void)qrc::device::device_by_name("ibmq_mars"),
               std::invalid_argument);
}

}  // namespace
