// Golden equivalence tests for the data-oriented hot kernels: the
// vectorized MLP batched forward vs the scalar reference (bitwise, across
// ragged batch and width sizes), the bitplane tableau vs a bit-by-bit
// reference implementation (1-130 qubits, crossing word boundaries), and
// copy-on-write circuit storage vs eager deep copies on a
// search-expansion probe.

#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <vector>

#include "clifford/tableau.hpp"
#include "core/actions.hpp"
#include "core/compilation_env.hpp"
#include "ir/circuit.hpp"
#include "rl/mlp.hpp"
#include "rl/thread_pool.hpp"

namespace {

using qrc::clifford::Tableau;
using qrc::core::ActionRegistry;
using qrc::core::CompilationEnv;
using qrc::core::CompilationState;
using qrc::ir::Circuit;
using qrc::rl::Mlp;
using qrc::rl::WorkerPool;

// ------------------------------------------------ MLP scalar vs vectorized --

/// True if the two buffers are identical to the last bit (memcmp, not ==,
/// so the test cannot be fooled by -0.0 or quiet NaN).
bool bitwise_equal(const double* a, const double* b, std::size_t n) {
  return std::memcmp(a, b, n * sizeof(double)) == 0;
}

std::vector<double> ragged_inputs(int batch, int width) {
  std::vector<double> in(static_cast<std::size_t>(batch) *
                         static_cast<std::size_t>(width));
  std::mt19937_64 rng(static_cast<std::uint64_t>(batch) * 977 +
                      static_cast<std::uint64_t>(width));
  std::normal_distribution<double> gauss(0.0, 1.0);
  for (double& v : in) {
    v = gauss(rng);
  }
  return in;
}

TEST(KernelMlpTest, BatchedForwardBitwiseMatchesScalarAcrossRaggedSizes) {
  // Output widths straddle the 4-lane AVX2 and 2-lane NEON vector widths;
  // batch sizes straddle the kRowBlock worker chunking.
  for (const std::vector<int> sizes :
       {std::vector<int>{7, 64, 30}, std::vector<int>{9, 65, 63, 1},
        std::vector<int>{5, 8, 9}}) {
    Mlp net(sizes, 1234);
    const int in_w = sizes.front();
    const int out_w = sizes.back();
    for (const int batch : {1, 7, 8, 9, 63, 64, 65}) {
      const auto inputs = ragged_inputs(batch, in_w);
      std::vector<double> batched;
      net.forward_batch(inputs, batch, batched);
      ASSERT_EQ(batched.size(), static_cast<std::size_t>(batch * out_w));
      for (int r = 0; r < batch; ++r) {
        const auto row = net.forward(std::span<const double>(
            inputs.data() + static_cast<std::size_t>(r) * in_w,
            static_cast<std::size_t>(in_w)));
        ASSERT_TRUE(bitwise_equal(
            row.data(), batched.data() + static_cast<std::size_t>(r) * out_w,
            static_cast<std::size_t>(out_w)))
            << "sizes.back()=" << out_w << " batch=" << batch << " row=" << r;
      }
    }
  }
}

TEST(KernelMlpTest, PooledForwardBitwiseMatchesUnpooled) {
  Mlp net({7, 64, 64, 30}, 99);
  WorkerPool pool(3);
  for (const int batch : {1, 7, 8, 9, 63, 64, 65}) {
    const auto inputs = ragged_inputs(batch, 7);
    std::vector<double> plain;
    std::vector<double> pooled;
    net.forward_batch(inputs, batch, plain);
    net.forward_batch(inputs, batch, pooled, &pool);
    ASSERT_EQ(plain.size(), pooled.size());
    EXPECT_TRUE(bitwise_equal(plain.data(), pooled.data(), plain.size()))
        << "batch=" << batch;
  }
}

TEST(KernelMlpTest, CachedBatchMatchesScalarCachedBitwise) {
  Mlp batched_net({6, 33, 17}, 7);
  Mlp scalar_net({6, 33, 17}, 7);
  const int batch = 9;
  const auto inputs = ragged_inputs(batch, 6);
  const auto& out = batched_net.forward_batch_cached(inputs, batch);
  for (int r = 0; r < batch; ++r) {
    const auto row = scalar_net.forward_cached(std::span<const double>(
        inputs.data() + static_cast<std::size_t>(r) * 6, 6));
    ASSERT_TRUE(bitwise_equal(
        row.data(), out.data() + static_cast<std::size_t>(r) * 17, 17))
        << "row=" << r;
  }
}

TEST(KernelMlpTest, StaysBitwiseAfterOptimizerMutatesWeightsInPlace) {
  // collect_parameters hands the optimizer raw pointers; a later in-place
  // weight update must be visible to the vectorized batched path (the
  // transposed weight cache cannot go stale).
  Mlp net({5, 16, 8}, 3);
  std::vector<double*> params;
  std::vector<double*> grads;
  net.collect_parameters(params, grads);
  std::mt19937_64 rng(17);
  std::normal_distribution<double> gauss(0.0, 0.1);
  for (double* p : params) {
    *p += gauss(rng);
  }
  const int batch = 13;
  const auto inputs = ragged_inputs(batch, 5);
  std::vector<double> batched;
  net.forward_batch(inputs, batch, batched);
  for (int r = 0; r < batch; ++r) {
    const auto row = net.forward(std::span<const double>(
        inputs.data() + static_cast<std::size_t>(r) * 5, 5));
    ASSERT_TRUE(bitwise_equal(
        row.data(), batched.data() + static_cast<std::size_t>(r) * 8, 8))
        << "row=" << r;
  }
}

// ------------------------------------------- tableau bitplane vs reference --

/// The pre-bitplane tableau: one bool per cell, the Aaronson-Gottesman
/// updates applied row by row, composites decomposed exactly like the
/// production code. Serves as the executable specification.
struct RefTableau {
  int n;
  std::vector<std::vector<bool>> x, z;
  std::vector<bool> r;

  explicit RefTableau(int num_qubits) : n(num_qubits) {
    const auto rows = static_cast<std::size_t>(2 * n);
    x.assign(rows, std::vector<bool>(static_cast<std::size_t>(n), false));
    z.assign(rows, std::vector<bool>(static_cast<std::size_t>(n), false));
    r.assign(rows, false);
    for (int i = 0; i < n; ++i) {
      x[static_cast<std::size_t>(i)][static_cast<std::size_t>(i)] = true;
      z[static_cast<std::size_t>(n + i)][static_cast<std::size_t>(i)] = true;
    }
  }

  void h(int q) {
    const auto c = static_cast<std::size_t>(q);
    for (std::size_t row = 0; row < x.size(); ++row) {
      const bool xv = x[row][c];
      const bool zv = z[row][c];
      r[row] = r[row] ^ (xv && zv);
      x[row][c] = zv;
      z[row][c] = xv;
    }
  }
  void s(int q) {
    const auto c = static_cast<std::size_t>(q);
    for (std::size_t row = 0; row < x.size(); ++row) {
      const bool xv = x[row][c];
      const bool zv = z[row][c];
      r[row] = r[row] ^ (xv && zv);
      z[row][c] = zv ^ xv;
    }
  }
  void cx(int cq, int tq) {
    const auto cc = static_cast<std::size_t>(cq);
    const auto ct = static_cast<std::size_t>(tq);
    for (std::size_t row = 0; row < x.size(); ++row) {
      const bool xc = x[row][cc];
      const bool zc = z[row][cc];
      const bool xt = x[row][ct];
      const bool zt = z[row][ct];
      r[row] = r[row] ^ (xc && zt && (xt == zc));
      x[row][ct] = xt ^ xc;
      z[row][cc] = zc ^ zt;
    }
  }
  void sdg(int q) { s(q); s(q); s(q); }
  void zg(int q) { s(q); s(q); }
  void xg(int q) { h(q); zg(q); h(q); }
  void yg(int q) { zg(q); xg(q); }
  void sx(int q) { h(q); s(q); h(q); }
  void sxdg(int q) { h(q); sdg(q); h(q); }
  void cz(int a, int b) { h(b); cx(a, b); h(b); }
  void cy(int c, int t) { sdg(t); cx(c, t); s(t); }
  void swap(int a, int b) { cx(a, b); cx(b, a); cx(a, b); }
  void iswap(int a, int b) { swap(a, b); cz(a, b); s(a); s(b); }
  void ecr(int a, int b) { cx(a, b); s(a); sx(b); xg(a); }
};

/// Applies the same randomly chosen primitive to both tableaus.
void random_gate(std::mt19937_64& rng, Tableau& t, RefTableau& ref) {
  const int kind = static_cast<int>(rng() % 14);
  const int a = static_cast<int>(rng() % static_cast<std::uint64_t>(ref.n));
  int b = a;
  if (ref.n > 1) {
    while (b == a) {
      b = static_cast<int>(rng() % static_cast<std::uint64_t>(ref.n));
    }
  }
  switch (kind) {
    case 0: t.apply_h(a); ref.h(a); break;
    case 1: t.apply_s(a); ref.s(a); break;
    case 2: t.apply_sdg(a); ref.sdg(a); break;
    case 3: t.apply_x(a); ref.xg(a); break;
    case 4: t.apply_y(a); ref.yg(a); break;
    case 5: t.apply_z(a); ref.zg(a); break;
    case 6: t.apply_sx(a); ref.sx(a); break;
    case 7: t.apply_sxdg(a); ref.sxdg(a); break;
    default:
      if (ref.n == 1) {  // no 2q gates on one qubit; fall back to H
        t.apply_h(a);
        ref.h(a);
        break;
      }
      switch (kind) {
        case 8: t.apply_cx(a, b); ref.cx(a, b); break;
        case 9: t.apply_cz(a, b); ref.cz(a, b); break;
        case 10: t.apply_cy(a, b); ref.cy(a, b); break;
        case 11: t.apply_swap(a, b); ref.swap(a, b); break;
        case 12: t.apply_iswap(a, b); ref.iswap(a, b); break;
        default: t.apply_ecr(a, b); ref.ecr(a, b); break;
      }
  }
}

void expect_tableaus_equal(const Tableau& t, const RefTableau& ref) {
  for (int row = 0; row < 2 * ref.n; ++row) {
    for (int col = 0; col < ref.n; ++col) {
      ASSERT_EQ(t.x(row, col),
                ref.x[static_cast<std::size_t>(row)]
                     [static_cast<std::size_t>(col)])
          << "x row=" << row << " col=" << col;
      ASSERT_EQ(t.z(row, col),
                ref.z[static_cast<std::size_t>(row)]
                     [static_cast<std::size_t>(col)])
          << "z row=" << row << " col=" << col;
    }
    ASSERT_EQ(t.r(row), ref.r[static_cast<std::size_t>(row)])
        << "r row=" << row;
  }
}

TEST(KernelTableauTest, BitplaneMatchesReferenceAcrossWordBoundaries) {
  // 2n rows cross the 64-bit word boundary at n = 32 (exactly one word),
  // 33 (spills into the second), 64/65 (two words exactly / spill) and
  // reach 130 qubits (> four words of rows, ~ the widest devices).
  for (const int n : {1, 2, 3, 5, 31, 32, 33, 63, 64, 65, 96, 127, 130}) {
    Tableau t(n);
    RefTableau ref(n);
    std::mt19937_64 rng(static_cast<std::uint64_t>(n) * 12345 + 7);
    const int gates = 60 + 4 * n;
    for (int g = 0; g < gates; ++g) {
      random_gate(rng, t, ref);
    }
    expect_tableaus_equal(t, ref);
  }
}

TEST(KernelTableauTest, WordViewsMatchBitAccessorsAndPadBitsStayZero) {
  const int n = 70;  // 140 rows: word 2 of 3 is partially used
  Tableau t(n);
  std::mt19937_64 rng(4242);
  RefTableau ref(n);
  for (int g = 0; g < 300; ++g) {
    random_gate(rng, t, ref);
  }
  ASSERT_EQ(t.num_words(), (2 * n + 63) / 64);
  const auto words = static_cast<std::size_t>(t.num_words());
  for (int col = 0; col < n; ++col) {
    const auto xp = t.x_plane(col);
    const auto zp = t.z_plane(col);
    ASSERT_EQ(xp.size(), words);
    for (int row = 0; row < 2 * n; ++row) {
      const auto w = static_cast<std::size_t>(row) / 64;
      const auto bitpos = static_cast<std::size_t>(row) % 64;
      EXPECT_EQ((xp[w] >> bitpos) & 1U, t.x(row, col) ? 1U : 0U);
      EXPECT_EQ((zp[w] >> bitpos) & 1U, t.z(row, col) ? 1U : 0U);
    }
    // Rows beyond 2n must stay zero so word-wide OR/popcount sweeps need
    // no masking.
    const std::uint64_t pad_mask = ~((std::uint64_t{1} << (2 * n % 64)) - 1);
    EXPECT_EQ(xp[words - 1] & pad_mask, 0U);
    EXPECT_EQ(zp[words - 1] & pad_mask, 0U);
  }
  const auto sgn = t.signs();
  for (int row = 0; row < 2 * n; ++row) {
    EXPECT_EQ((sgn[static_cast<std::size_t>(row) / 64] >>
               (static_cast<std::size_t>(row) % 64)) &
                  1U,
              t.r(row) ? 1U : 0U);
  }
}

TEST(KernelTableauTest, RoundTripAcrossWordBoundary) {
  // from_circuit(to_circuit(T)) == T at a width whose 2n spans 3 words.
  const int n = 65;
  Circuit c(n, "wide_clifford");
  std::mt19937_64 rng(9001);
  for (int g = 0; g < 400; ++g) {
    const int q = static_cast<int>(rng() % n);
    int p = static_cast<int>(rng() % n);
    switch (rng() % 4) {
      case 0: c.h(q); break;
      case 1: c.s(q); break;
      case 2: c.sdg(q); break;
      default:
        while (p == q) {
          p = static_cast<int>(rng() % n);
        }
        c.cx(q, p);
    }
  }
  const auto t = Tableau::from_circuit(c);
  ASSERT_TRUE(t.has_value());
  const auto redone = Tableau::from_circuit(t->to_circuit());
  ASSERT_TRUE(redone.has_value());
  EXPECT_TRUE(*t == *redone);
}

// ----------------------------------------------------------- COW circuits --

TEST(KernelCowTest, CopySharesUntilMutation) {
  Circuit base(3, "base");
  base.h(0);
  base.cx(0, 1);
  base.cx(1, 2);

  Circuit copy = base;
  EXPECT_TRUE(copy.shares_ops_with(base));
  EXPECT_EQ(copy, base);

  copy.h(2);  // first mutation materializes a private buffer
  EXPECT_FALSE(copy.shares_ops_with(base));
  EXPECT_EQ(base.size(), 3u);
  EXPECT_EQ(copy.size(), 4u);
  EXPECT_EQ(base.ops()[2].qubit(0), 1);  // parent untouched

  Circuit again = base;
  (void)again.ops();  // read access must not materialize
  EXPECT_TRUE(again.shares_ops_with(base));
  (void)again.mutable_ops();
  EXPECT_FALSE(again.shares_ops_with(base));
  EXPECT_EQ(again, base);  // same content, private buffer
}

TEST(KernelCowTest, RemoveOpsLeavesSharedParentIntact) {
  Circuit base(2, "b");
  base.h(0);
  base.x(1);
  base.cx(0, 1);
  Circuit copy = base;
  copy.remove_ops({false, true, false});
  EXPECT_EQ(base.size(), 3u);
  EXPECT_EQ(copy.size(), 2u);
  EXPECT_FALSE(copy.shares_ops_with(base));
}

TEST(KernelCowTest, SearchProbeMatchesEagerDeepCopy) {
  // Expansion probe: step every valid action once via peek_step from a COW
  // state and from a state whose circuit was eagerly materialized into a
  // private buffer first. The traces must match op-for-op — COW may only
  // change *when* the buffer is copied, never what any pass observes.
  const auto& registry = ActionRegistry::instance();
  Circuit c(4, "probe");
  c.h(0);
  c.cx(0, 1);
  c.cx(1, 2);
  c.cx(2, 3);
  c.t(3);
  c.measure_all();

  CompilationState cow_state;
  cow_state.circuit = c;
  CompilationState eager_state;
  eager_state.circuit = c;
  (void)eager_state.circuit.mutable_ops();  // force a private buffer

  int depths_probed = 0;
  for (int depth = 0; depth < 6; ++depth) {
    const auto mask = registry.mask(cow_state);
    int chosen = -1;
    for (int a = 0; a < registry.size(); ++a) {
      if (!mask[static_cast<std::size_t>(a)]) {
        continue;
      }
      const auto cow_child = CompilationEnv::peek_step(cow_state, a, 77);
      CompilationState eager_in = eager_state;
      (void)eager_in.circuit.mutable_ops();
      const auto eager_child = CompilationEnv::peek_step(eager_in, a, 77);
      ASSERT_EQ(cow_child.circuit, eager_child.circuit)
          << "depth=" << depth << " action=" << registry.at(a).name();
      if (chosen < 0) {
        chosen = a;
      }
    }
    if (chosen < 0) {
      break;  // terminal: every action masked off
    }
    ++depths_probed;
    cow_state = CompilationEnv::peek_step(cow_state, chosen, 77);
    eager_state = CompilationEnv::peek_step(eager_state, chosen, 77);
    (void)eager_state.circuit.mutable_ops();
  }
  EXPECT_GE(depths_probed, 3);  // the probe must exercise real expansions
}

TEST(KernelCowTest, PeekStepOfCircuitPreservingActionSharesBuffer) {
  // Choosing a platform rewrites MDP bookkeeping but not the circuit: the
  // child must still share the parent's op buffer (the whole point of COW
  // node expansion).
  const auto& registry = ActionRegistry::instance();
  CompilationState state;
  Circuit c(3, "share");
  c.h(0);
  c.cx(0, 1);
  c.cx(1, 2);
  state.circuit = c;
  const int platform = registry.index_of("platform_ibm");
  const auto child = CompilationEnv::peek_step(state, platform, 1);
  EXPECT_TRUE(child.circuit.shares_ops_with(state.circuit));
}

}  // namespace
