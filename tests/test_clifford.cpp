// Tests for the stabilizer tableau: gate update rules against the
// statevector simulator, Clifford recognition, and canonical resynthesis.

#include <gtest/gtest.h>

#include <random>

#include "clifford/tableau.hpp"
#include "ir/circuit.hpp"
#include "ir/sim.hpp"

namespace {

using qrc::clifford::as_clifford_ops;
using qrc::clifford::Tableau;
using qrc::ir::Circuit;
using qrc::ir::GateKind;
using qrc::ir::Operation;
using qrc::la::kPi;

/// Random Clifford circuit from the primitive generator set.
Circuit random_clifford_circuit(int n, int length, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> gate_pick(0, 7);
  std::uniform_int_distribution<int> qubit_pick(0, n - 1);
  Circuit c(n, "random_clifford");
  for (int i = 0; i < length; ++i) {
    const int q = qubit_pick(rng);
    switch (gate_pick(rng)) {
      case 0:
        c.h(q);
        break;
      case 1:
        c.s(q);
        break;
      case 2:
        c.sdg(q);
        break;
      case 3:
        c.x(q);
        break;
      case 4:
        c.sx(q);
        break;
      case 5:
        c.z(q);
        break;
      default: {
        if (n < 2) {
          c.h(q);
          break;
        }
        int q2 = qubit_pick(rng);
        while (q2 == q) {
          q2 = qubit_pick(rng);
        }
        c.cx(q, q2);
        break;
      }
    }
  }
  return c;
}

/// Checks that the decomposition returned by as_clifford_ops matches the
/// original operation's unitary up to global phase (via the simulator).
void expect_decomposition_equivalent(const Operation& op, int n) {
  const auto ops = as_clifford_ops(op);
  ASSERT_TRUE(ops.has_value());
  Circuit original(n);
  original.append(op);
  Circuit decomposed(n);
  for (const Operation& g : *ops) {
    decomposed.append(g);
  }
  EXPECT_TRUE(qrc::ir::circuits_equivalent(original, decomposed))
      << qrc::ir::gate_name(op.kind());
}

// ------------------------------------------------------- tableau rules ----

TEST(TableauTest, IdentityTableau) {
  const Tableau t(3);
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(t.x(i, i));
    EXPECT_TRUE(t.z(3 + i, i));
    EXPECT_FALSE(t.r(i));
    EXPECT_FALSE(t.r(3 + i));
  }
}

TEST(TableauTest, HSwapsXAndZ) {
  Tableau t(1);
  t.apply_h(0);
  // destabilizer X -> Z, stabilizer Z -> X.
  EXPECT_FALSE(t.x(0, 0));
  EXPECT_TRUE(t.z(0, 0));
  EXPECT_TRUE(t.x(1, 0));
  EXPECT_FALSE(t.z(1, 0));
}

TEST(TableauTest, STurnsXIntoY) {
  Tableau t(1);
  t.apply_s(0);
  EXPECT_TRUE(t.x(0, 0));
  EXPECT_TRUE(t.z(0, 0));  // Y = x & z set
  EXPECT_FALSE(t.r(0));
  // Z unchanged.
  EXPECT_TRUE(t.z(1, 0));
  EXPECT_FALSE(t.x(1, 0));
}

TEST(TableauTest, XFlipsStabilizerSign) {
  Tableau t(1);
  t.apply_x(0);
  EXPECT_TRUE(t.r(1));   // X Z X = -Z
  EXPECT_FALSE(t.r(0));  // X X X = X
}

TEST(TableauTest, CxPropagatesX) {
  Tableau t(2);
  t.apply_cx(0, 1);
  // destab X_0 -> X_0 X_1.
  EXPECT_TRUE(t.x(0, 0));
  EXPECT_TRUE(t.x(0, 1));
  // stab Z_1 -> Z_0 Z_1.
  EXPECT_TRUE(t.z(3, 0));
  EXPECT_TRUE(t.z(3, 1));
}

TEST(TableauTest, HshEqualsSx) {
  // Validated indirectly: sx via composite must equal rx(pi/2) conjugation.
  Tableau a(1);
  a.apply_sx(0);
  Tableau b(1);
  b.apply_h(0);
  b.apply_s(0);
  b.apply_h(0);
  EXPECT_TRUE(a == b);
}

TEST(TableauTest, SwapExchangesColumns) {
  Tableau t(2);
  t.apply_swap(0, 1);
  EXPECT_TRUE(t.x(0, 1));
  EXPECT_FALSE(t.x(0, 0));
  EXPECT_TRUE(t.z(2, 1));
}

// ------------------------------------- decomposition (vs statevector) ----

TEST(CliffordOpsTest, PrimitiveGatesPassThrough) {
  const std::array<int, 1> q0{0};
  const std::array<int, 2> q01{0, 1};
  for (const GateKind kind :
       {GateKind::kX, GateKind::kY, GateKind::kZ, GateKind::kH, GateKind::kS,
        GateKind::kSdg, GateKind::kSX, GateKind::kSXdg}) {
    expect_decomposition_equivalent(Operation(kind, q0), 1);
  }
  for (const GateKind kind : {GateKind::kCX, GateKind::kCY, GateKind::kCZ,
                              GateKind::kSWAP, GateKind::kISWAP,
                              GateKind::kECR}) {
    expect_decomposition_equivalent(Operation(kind, q01), 2);
  }
}

TEST(CliffordOpsTest, RotationsAtQuarterTurns) {
  const std::array<int, 1> q0{0};
  for (const GateKind kind : {GateKind::kRZ, GateKind::kRX, GateKind::kRY,
                              GateKind::kP}) {
    for (const double angle : {0.0, kPi / 2.0, kPi, 3.0 * kPi / 2.0,
                               -kPi / 2.0, 2.0 * kPi}) {
      const std::array<double, 1> params{angle};
      expect_decomposition_equivalent(Operation(kind, q0, params), 1);
    }
  }
}

TEST(CliffordOpsTest, TwoQubitRotationsAtQuarterTurns) {
  const std::array<int, 2> q01{0, 1};
  for (const GateKind kind : {GateKind::kRZZ, GateKind::kRXX, GateKind::kRYY,
                              GateKind::kRZX}) {
    for (const double angle : {0.0, kPi / 2.0, kPi, -kPi / 2.0}) {
      const std::array<double, 1> params{angle};
      expect_decomposition_equivalent(Operation(kind, q01, params), 2);
    }
  }
}

TEST(CliffordOpsTest, ControlledPhaseAtPi) {
  const std::array<int, 2> q01{0, 1};
  const std::array<double, 1> pi_param{kPi};
  expect_decomposition_equivalent(Operation(GateKind::kCP, q01, pi_param), 2);
  const std::array<double, 1> crz_params[] = {{kPi}, {-kPi}, {2.0 * kPi},
                                              {3.0 * kPi}};
  for (const auto& p : crz_params) {
    expect_decomposition_equivalent(Operation(GateKind::kCRZ, q01, p), 2);
  }
}

TEST(CliffordOpsTest, NonCliffordRejected) {
  const std::array<int, 1> q0{0};
  const std::array<int, 2> q01{0, 1};
  const std::array<double, 1> eighth{kPi / 4.0};
  EXPECT_FALSE(as_clifford_ops(Operation(GateKind::kT, q0)).has_value());
  EXPECT_FALSE(
      as_clifford_ops(Operation(GateKind::kRZ, q0, eighth)).has_value());
  EXPECT_FALSE(
      as_clifford_ops(Operation(GateKind::kCP, q01, eighth)).has_value());
  const std::array<int, 3> q012{0, 1, 2};
  EXPECT_FALSE(as_clifford_ops(Operation(GateKind::kCCX, q012)).has_value());
  EXPECT_FALSE(
      as_clifford_ops(Operation(GateKind::kMeasure, q0)).has_value());
}

TEST(CliffordOpsTest, CliffordCircuitRecognition) {
  Circuit clifford(2);
  clifford.h(0);
  clifford.cx(0, 1);
  clifford.rz(kPi / 2.0, 1);
  EXPECT_TRUE(qrc::clifford::is_clifford_circuit(clifford));
  clifford.t(0);
  EXPECT_FALSE(qrc::clifford::is_clifford_circuit(clifford));
}

// ----------------------------------------------------------- synthesis ----

TEST(TableauSynthesisTest, IdentityGivesEmptyCircuit) {
  const Tableau t(4);
  const Circuit c = t.to_circuit();
  EXPECT_EQ(c.gate_count(), 0);
}

TEST(TableauSynthesisTest, RoundTripTableauEquality) {
  for (int trial = 0; trial < 20; ++trial) {
    const int n = 2 + trial % 4;
    const Circuit original = random_clifford_circuit(
        n, 30, 1000 + static_cast<std::uint64_t>(trial));
    const auto t = Tableau::from_circuit(original);
    ASSERT_TRUE(t.has_value());
    const Circuit resynth = t->to_circuit();
    const auto t2 = Tableau::from_circuit(resynth);
    ASSERT_TRUE(t2.has_value());
    EXPECT_TRUE(*t == *t2) << "trial " << trial;
  }
}

TEST(TableauSynthesisTest, RoundTripStatevectorEquivalence) {
  for (int trial = 0; trial < 10; ++trial) {
    const int n = 2 + trial % 3;
    const Circuit original = random_clifford_circuit(
        n, 25, 2000 + static_cast<std::uint64_t>(trial));
    const auto t = Tableau::from_circuit(original);
    ASSERT_TRUE(t.has_value());
    const Circuit resynth = t->to_circuit();
    EXPECT_TRUE(qrc::ir::circuits_equivalent(original, resynth))
        << "trial " << trial;
  }
}

TEST(TableauSynthesisTest, GhzPreparationRoundTrip) {
  Circuit ghz(4);
  ghz.h(0);
  ghz.cx(0, 1);
  ghz.cx(1, 2);
  ghz.cx(2, 3);
  const auto t = Tableau::from_circuit(ghz);
  ASSERT_TRUE(t.has_value());
  EXPECT_TRUE(qrc::ir::circuits_equivalent(ghz, t->to_circuit()));
}

TEST(TableauSynthesisTest, ResynthesisCompressesRedundantCircuit) {
  // A long circuit that is secretly the identity on 3 qubits.
  Circuit c(3);
  for (int rep = 0; rep < 10; ++rep) {
    c.h(0);
    c.cx(0, 1);
    c.cx(0, 1);
    c.h(0);
    c.s(2);
    c.sdg(2);
  }
  const auto t = Tableau::from_circuit(c);
  ASSERT_TRUE(t.has_value());
  const Circuit resynth = t->to_circuit();
  EXPECT_EQ(resynth.gate_count(), 0);
}

TEST(TableauSynthesisTest, FromCircuitRejectsNonClifford) {
  Circuit c(2);
  c.h(0);
  c.t(0);
  EXPECT_FALSE(Tableau::from_circuit(c).has_value());
}

}  // namespace
