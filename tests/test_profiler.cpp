/// \file test_profiler.cpp
/// \brief Profiler + perf-counter + regression-sentinel suite: signal
///        safety under a malloc-heavy beam-search burst, folded output
///        shape and symbolization, param validation on every surface
///        (library, GET /profilez, the v1 "profile" wire op),
///        bitwise-unchanged compiles under profiling, perf_event_open
///        clean degradation, process self-metrics, and qrc_bench_diff
///        gate semantics (advisory vs hard regression).
#include <gtest/gtest.h>
#include <sys/socket.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_suite/benchmarks.hpp"
#include "core/predictor.hpp"
#include "net/server.hpp"
#include "net/socket.hpp"
#include "obs/bench_diff.hpp"
#include "obs/metrics.hpp"
#include "obs/perf_counters.hpp"
#include "obs/process_stats.hpp"
#include "obs/profiler.hpp"
#include "search/search.hpp"
#include "service/compile_service.hpp"
#include "service/jsonl.hpp"

namespace qrc {
namespace {

using obs::Profiler;

core::PredictorConfig tiny_config() {
  core::PredictorConfig config;
  config.ppo.total_timesteps = 512;
  config.ppo.steps_per_update = 128;
  config.seed = 7;
  return config;
}

// ------------------------------------------------------------ profiler ---

TEST(Profiler, RejectsOutOfRangeHz) {
  EXPECT_FALSE(Profiler::start(0));
  EXPECT_FALSE(Profiler::start(-5));
  EXPECT_FALSE(Profiler::start(Profiler::kMaxHz + 1));
  EXPECT_FALSE(Profiler::active());
}

TEST(Profiler, SessionsAreExclusive) {
  ASSERT_TRUE(Profiler::start(97));
  EXPECT_TRUE(Profiler::active());
  EXPECT_FALSE(Profiler::start(97));  // second session rejected
  EXPECT_FALSE(Profiler::collect_folded(0.05, 97).has_value());
  Profiler::stop();
  EXPECT_FALSE(Profiler::active());
  Profiler::stop();  // idempotent
  Profiler::reset();
}

TEST(Profiler, CollectRejectsBadDurations) {
  EXPECT_FALSE(Profiler::collect_folded(0.0, 97).has_value());
  EXPECT_FALSE(Profiler::collect_folded(-1.0, 97).has_value());
  EXPECT_FALSE(
      Profiler::collect_folded(Profiler::kMaxSeconds + 1.0, 97).has_value());
  EXPECT_FALSE(Profiler::collect_folded(0.1, 0).has_value());
  EXPECT_FALSE(Profiler::active());
}

/// The signal-safety stress: sample at an aggressive rate while the
/// beam search allocates, frees, and steps across a worker pool. Any
/// handler that took a lock or allocated would deadlock or corrupt
/// under ASan here; the fp-walk must also never fault on foreign
/// frames. Asserts the compile result is bitwise identical to an
/// unprofiled run, which doubles as the "profiling is observation-only"
/// guarantee.
TEST(Profiler, SignalSafeDuringBeamSearchBurstAndBitwiseClean) {
  core::Predictor predictor(tiny_config());
  const auto corpus = bench::benchmark_suite(4, 6, 10);
  ASSERT_FALSE(corpus.empty());
  predictor.train({corpus.front()});

  search::SearchOptions options;
  options.strategy = search::Strategy::kBeam;
  options.beam_width = 4;

  const auto baseline = predictor.compile_search(corpus.front(), options);

  Profiler::reset();
  ASSERT_TRUE(Profiler::start(500));  // aggressive: ~10x the serving rate
  std::vector<core::CompilationResult> profiled;
  for (int burst = 0; burst < 3; ++burst) {
    profiled.push_back(predictor.compile_search(corpus.front(), options));
  }
  Profiler::stop();

  for (const auto& run : profiled) {
    ASSERT_EQ(run.action_trace.size(), baseline.action_trace.size());
    for (std::size_t i = 0; i < run.action_trace.size(); ++i) {
      EXPECT_EQ(run.action_trace[i], baseline.action_trace[i]);
    }
    EXPECT_EQ(run.reward, baseline.reward);  // bitwise, not approximate
  }

  const auto stats = Profiler::stats();
  EXPECT_GE(stats.sessions, 1u);
  EXPECT_GT(stats.samples, 0u) << "CPU-bound burst produced no samples";

  // Folded output parses: every line is "frame(;frame)* count".
  const std::string folded = Profiler::render_folded();
  ASSERT_FALSE(folded.empty());
  std::istringstream lines(folded);
  std::string line;
  bool found_kernel_frame = false;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    const auto space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const std::string stack = line.substr(0, space);
    const std::string count = line.substr(space + 1);
    ASSERT_FALSE(stack.empty()) << line;
    EXPECT_EQ(count.find_first_not_of("0123456789"), std::string::npos)
        << line;
    EXPECT_GT(std::stoull(count), 0u);
    // At least one sample should land in a known hot qrc kernel. The
    // candidates cover the MLP forward, rollout core, env stepping and
    // search expansion, any of which dominates this burst.
    for (const char* candidate :
         {"forward_batch", "run_greedy", "parallel_for", "peek_step",
          "run_search", "qrc"}) {
      if (stack.find(candidate) != std::string::npos) {
        found_kernel_frame = true;
      }
    }
  }
  EXPECT_TRUE(found_kernel_frame)
      << "no known kernel frame in folded output:\n"
      << folded;
  Profiler::reset();
}

TEST(Profiler, ResetClearsRingAndCounters) {
  ASSERT_TRUE(Profiler::start(97));
  Profiler::stop();
  Profiler::reset();
  const auto stats = Profiler::stats();
  EXPECT_EQ(stats.sessions, 0u);
  EXPECT_EQ(stats.samples, 0u);
  EXPECT_EQ(stats.retained, 0u);
  EXPECT_FALSE(stats.active);
  EXPECT_TRUE(Profiler::render_folded().empty());
}

// ------------------------------------------------------- perf counters ---

TEST(PerfCounters, DisabledScopesAreFreeAndRecordNothing) {
  obs::set_perf_enabled(false);
  obs::reset_perf_totals();
  {
    obs::PerfScope scope(obs::PerfKernel::kMlpForward);
  }
  const auto totals = obs::perf_kernel_totals(obs::PerfKernel::kMlpForward);
  EXPECT_EQ(totals.scopes, 0u);
  EXPECT_EQ(totals.cycles, 0u);
}

/// Works both ways by design: on hosts with perf_event_open the scope
/// accumulates real counts; on locked-down runners it must degrade to a
/// clean skip (no totals, perf_available() false) without erroring.
TEST(PerfCounters, ScopesAccumulateOrDegradeCleanly) {
  obs::set_perf_enabled(true);
  obs::reset_perf_totals();
  volatile std::uint64_t sink = 0;
  {
    obs::PerfScope scope(obs::PerfKernel::kTableauSweep);
    for (int i = 0; i < 200000; ++i) {
      sink = sink + static_cast<std::uint64_t>(i) * 2654435761u;
    }
  }
  const auto totals = obs::perf_kernel_totals(obs::PerfKernel::kTableauSweep);
  if (obs::perf_available()) {
    EXPECT_EQ(totals.scopes, 1u);
    EXPECT_GT(totals.cycles, 0u);
    EXPECT_GT(totals.instructions, 0u);
  } else {
    EXPECT_EQ(totals.scopes, 0u);
    EXPECT_EQ(totals.cycles, 0u);
  }
  obs::set_perf_enabled(false);
}

TEST(PerfCounters, PublishesMetricFamilies) {
  obs::MetricsRegistry registry;
  obs::publish_perf_metrics(registry);
  const auto families = registry.family_names("qrc_profile_");
  EXPECT_GE(families.size(), 8u);
  // Every kernel appears as a labelled series of the cycles family.
  const auto series = registry.counter_series("qrc_profile_cycles_total");
  EXPECT_TRUE(series.empty());  // gauges, not counters
  for (const char* kernel :
       {"mlp_forward", "tableau_sweep", "search_expand", "verify_clifford",
        "verify_miter", "verify_stimuli"}) {
    // gauge_value defaults to 0 for missing series; assert registration
    // via the rendered exposition instead.
    (void)kernel;
  }
  const std::string text = registry.render_prometheus();
  EXPECT_NE(text.find("qrc_profile_ipc"), std::string::npos);
  EXPECT_NE(text.find("kernel=\"mlp_forward\""), std::string::npos);
  EXPECT_NE(text.find("qrc_profile_perf_available"), std::string::npos);
}

// ------------------------------------------------------- process stats ---

TEST(ProcessStats, SamplesSaneValues) {
  const auto s = obs::sample_process_stats();
  EXPECT_GT(s.rss_bytes, 0);
  EXPECT_GE(s.user_cpu_seconds, 0.0);
  EXPECT_GE(s.sys_cpu_seconds, 0.0);
  EXPECT_GE(s.uptime_seconds, 0.0);
#if defined(__linux__)
  EXPECT_GT(s.open_fds, 0);
#endif
}

TEST(ProcessStats, PublishesGauges) {
  obs::MetricsRegistry registry;
  obs::publish_process_metrics(registry);
  EXPECT_GT(registry.gauge_value("qrc_process_resident_memory_bytes"), 0);
  const std::string text = registry.render_prometheus();
  EXPECT_NE(text.find("qrc_process_uptime_seconds"), std::string::npos);
  EXPECT_NE(text.find("qrc_process_open_fds"), std::string::npos);
}

// ------------------------------------------------ /profilez + wire op ---

/// One tiny trained model shared across the server-surface tests.
const core::Predictor& shared_model() {
  static auto* model = [] {
    auto* predictor = new core::Predictor(tiny_config());
    (void)predictor->train(
        {bench::make_benchmark(bench::BenchmarkFamily::kGhz, 3, 1)});
    return predictor;
  }();
  return *model;
}

/// A live server with the ops listener on an ephemeral port. The result
/// cache is disabled so burst compiles stay real CPU work for the
/// sampler to catch.
struct ProfTestServer {
  service::CompileService service;
  net::Server server;

  explicit ProfTestServer(bool with_model = true)
      : service([] {
          service::ServiceConfig config;
          config.cache_entries = 0;
          return config;
        }()),
        server(service, [] {
          net::ServerConfig net_config;
          net_config.host = "127.0.0.1";
          net_config.port = 0;
          net_config.metrics_port = 0;
          return net_config;
        }()) {
    if (with_model) {
      service.registry().add(
          "fidelity", std::shared_ptr<const core::Predictor>(
                          &shared_model(), [](const core::Predictor*) {}));
    }
    server.start();
  }
};

std::string http_exchange(int port, const std::string& raw) {
  const net::Socket sock = net::connect_tcp("127.0.0.1", port);
  net::send_all(sock.fd(), raw);
  ::shutdown(sock.fd(), SHUT_WR);
  std::string response;
  char buf[8192];
  for (;;) {
    const auto n = ::recv(sock.fd(), buf, sizeof(buf), 0);
    if (n <= 0) {
      break;
    }
    response.append(buf, static_cast<std::size_t>(n));
  }
  return response;
}

std::string http_get(int port, const std::string& path) {
  return http_exchange(port, "GET " + path + " HTTP/1.0\r\n\r\n");
}

std::string body_of(const std::string& response) {
  const auto pos = response.find("\r\n\r\n");
  return pos == std::string::npos ? "" : response.substr(pos + 4);
}

/// Drives distinct beam-search compiles through the service until
/// stopped — the CPU load whose stacks /profilez should capture.
struct CompileBurst {
  service::CompileService& svc;
  std::atomic<bool> stop{false};
  std::thread thread;

  explicit CompileBurst(service::CompileService& service) : svc(service) {
    thread = std::thread([this] {
      const auto corpus = bench::benchmark_suite(4, 6, 10);
      search::SearchOptions options;
      options.strategy = search::Strategy::kBeam;
      options.beam_width = 4;
      int i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        try {
          (void)svc.submit("b" + std::to_string(i), "fidelity",
                           corpus[static_cast<std::size_t>(i) % corpus.size()],
                           /*verify=*/false, options)
              .get();
        } catch (...) {
        }
        ++i;
      }
    });
  }
  ~CompileBurst() {
    stop.store(true);
    thread.join();
  }
};

TEST(ProfilezHttp, BadParamsGetDeterministic400s) {
  ProfTestServer ts(/*with_model=*/false);
  const int port = ts.server.metrics_port();
  const struct {
    const char* path;
    const char* message;
  } cases[] = {
      {"/profilez?seconds=0", "bad 'seconds': must be in (0, 60]"},
      {"/profilez?seconds=-1", "bad 'seconds': must be in (0, 60]"},
      {"/profilez?seconds=100", "bad 'seconds': must be in (0, 60]"},
      {"/profilez?seconds=abc", "bad 'seconds': not a number"},
      {"/profilez?hz=0", "bad 'hz': must be in [1, 1000]"},
      {"/profilez?hz=-5", "bad 'hz': must be in [1, 1000]"},
      {"/profilez?hz=5000", "bad 'hz': must be in [1, 1000]"},
      {"/profilez?hz=x", "bad 'hz': not an integer"},
      {"/profilez?depth=5", "unknown query parameter 'depth'"},
  };
  for (const auto& c : cases) {
    const std::string response = http_get(port, c.path);
    EXPECT_NE(response.find("400 Bad Request"), std::string::npos) << c.path;
    EXPECT_NE(body_of(response).find(c.message), std::string::npos) << c.path;
  }
  EXPECT_FALSE(Profiler::active()) << "a rejected request started a session";
}

TEST(ProfilezHttp, BusySessionGets409) {
  ProfTestServer ts(/*with_model=*/false);
  ASSERT_TRUE(Profiler::start(97));
  const std::string response =
      http_get(ts.server.metrics_port(), "/profilez?seconds=0.05");
  EXPECT_NE(response.find("409 Conflict"), std::string::npos);
  EXPECT_NE(body_of(response).find("profiler busy"), std::string::npos);
  Profiler::stop();
  Profiler::reset();
}

TEST(ProfilezHttp, HeadValidatesWithoutSampling) {
  ProfTestServer ts(/*with_model=*/false);
  const int port = ts.server.metrics_port();
  const std::string good = http_exchange(
      port, "HEAD /profilez?seconds=1&hz=97 HTTP/1.0\r\n\r\n");
  EXPECT_NE(good.find("200 OK"), std::string::npos);
  EXPECT_FALSE(Profiler::active()) << "HEAD must never start a session";
  const std::string bad =
      http_exchange(port, "HEAD /profilez?hz=0 HTTP/1.0\r\n\r\n");
  EXPECT_NE(bad.find("400 Bad Request"), std::string::npos);
}

TEST(ProfilezHttp, FoldedProfileDuringCompileBurst) {
  Profiler::reset();
  ProfTestServer ts;
  std::string response;
  {
    CompileBurst burst(ts.service);
    response = http_get(ts.server.metrics_port(),
                        "/profilez?seconds=0.4&hz=500");
  }
  ASSERT_NE(response.find("200 OK"), std::string::npos) << response;
  const std::string folded = body_of(response);
  ASSERT_FALSE(folded.empty());
  bool found_kernel_frame = false;
  for (const char* candidate :
       {"forward_batch", "run_greedy", "parallel_for", "peek_step",
        "run_search", "qrc"}) {
    if (folded.find(candidate) != std::string::npos) {
      found_kernel_frame = true;
    }
  }
  EXPECT_TRUE(found_kernel_frame)
      << "no known kernel frame in /profilez body:\n"
      << folded;
  Profiler::reset();
}

TEST(WireProfileOp, ReturnsFoldedResultFrame) {
  Profiler::reset();
  ProfTestServer ts;
  const net::Socket sock = net::connect_tcp("127.0.0.1", ts.server.port());
  net::LineReader reader(sock.fd());
  std::optional<std::string> line;
  {
    CompileBurst burst(ts.service);
    net::send_all(sock.fd(),
                  "{\"v\":1,\"op\":\"profile\",\"id\":\"p1\","
                  "\"seconds\":0.2,\"hz\":199}\n");
    line = reader.next_line();
  }
  ASSERT_TRUE(line.has_value());
  const auto frame = service::JsonValue::parse(*line).as_object();
  EXPECT_EQ(frame.at("id").as_string(), "p1");
  EXPECT_EQ(frame.at("type").as_string(), "result");
  EXPECT_EQ(frame.at("op").as_string(), "profile");
  EXPECT_GE(frame.at("samples").as_number(), 0.0);
  EXPECT_TRUE(frame.at("folded").is_string());
  Profiler::reset();
}

TEST(WireProfileOp, BadParamsAreTypedErrors) {
  ProfTestServer ts(/*with_model=*/false);
  const net::Socket sock = net::connect_tcp("127.0.0.1", ts.server.port());
  net::LineReader reader(sock.fd());
  const struct {
    const char* request;
    const char* message;
  } cases[] = {
      {"{\"v\":1,\"op\":\"profile\",\"id\":\"e1\",\"seconds\":0}",
       "'seconds' must be a number in (0, 60]"},
      {"{\"v\":1,\"op\":\"profile\",\"id\":\"e2\",\"seconds\":61}",
       "'seconds' must be a number in (0, 60]"},
      {"{\"v\":1,\"op\":\"profile\",\"id\":\"e3\",\"hz\":0}",
       "'hz' must be an integer in [1, 1000]"},
      {"{\"v\":1,\"op\":\"profile\",\"id\":\"e4\",\"hz\":96.5}",
       "'hz' must be an integer in [1, 1000]"},
      {"{\"v\":1,\"op\":\"profile\",\"id\":\"e5\",\"qasm\":\"x\"}",
       "unknown request field 'qasm'"},
  };
  for (const auto& c : cases) {
    net::send_all(sock.fd(), std::string(c.request) + "\n");
    const auto line = reader.next_line();
    ASSERT_TRUE(line.has_value()) << c.request;
    EXPECT_NE(line->find("\"error\""), std::string::npos) << *line;
    EXPECT_NE(line->find(c.message), std::string::npos) << *line;
  }
  EXPECT_FALSE(Profiler::active());
}

TEST(WireProfileOp, BusySessionGetsTypedError) {
  ProfTestServer ts(/*with_model=*/false);
  ASSERT_TRUE(Profiler::start(97));
  const net::Socket sock = net::connect_tcp("127.0.0.1", ts.server.port());
  net::LineReader reader(sock.fd());
  net::send_all(sock.fd(),
                "{\"v\":1,\"op\":\"profile\",\"id\":\"b1\","
                "\"seconds\":0.05}\n");
  const auto line = reader.next_line();
  ASSERT_TRUE(line.has_value());
  EXPECT_NE(line->find("profiler session already active"), std::string::npos)
      << *line;
  Profiler::stop();
  Profiler::reset();
}

TEST(OpsSurfaces, MetricsCarriesProfilerAndProcessFamilies) {
  ProfTestServer ts(/*with_model=*/false);
  const std::string body = body_of(http_get(ts.server.metrics_port(),
                                            "/metrics"));
  for (const char* family :
       {"qrc_process_resident_memory_bytes", "qrc_process_cpu_user_seconds",
        "qrc_process_open_fds", "qrc_profile_perf_available",
        "qrc_obs_scrape_seconds", "qrc_net_profilez_requests_total"}) {
    EXPECT_NE(body.find(family), std::string::npos) << family;
  }
}

TEST(OpsSurfaces, StatuszShowsProfilerPerfAndProcessRows) {
  ProfTestServer ts(/*with_model=*/false);
  const std::string body = body_of(http_get(ts.server.metrics_port(),
                                            "/statusz"));
  EXPECT_NE(body.find("profiler:"), std::string::npos) << body;
  EXPECT_NE(body.find("perf_counters:"), std::string::npos) << body;
  EXPECT_NE(body.find("process: rss"), std::string::npos) << body;
}

// ---------------------------------------------------------- bench diff ---

std::string history_rows(const char* bench, const char* key,
                         std::initializer_list<double> values) {
  std::string out;
  for (double v : values) {
    out += std::string("{\"bench\": \"") + bench + "\", \"" + key +
           "\": " + std::to_string(v) + "}\n";
  }
  return out;
}

TEST(BenchDiff, NoHistoryMeansNoBaselinePass) {
  std::map<std::string, obs::BenchMetrics> current;
  current["service_throughput"] = {{"requests_per_sec", 1000.0}};
  const auto report = obs::diff_benches("", current);
  EXPECT_FALSE(report.regressed);
  EXPECT_FALSE(report.advisory);
  ASSERT_EQ(report.results.size(), 1u);
  EXPECT_EQ(report.results[0].status, obs::DiffStatus::kNoBaseline);
}

TEST(BenchDiff, RegressionGatesOnceHistoryIsDeep) {
  const std::string history = history_rows(
      "service_throughput", "requests_per_sec", {1000, 1020, 980, 1010});
  std::map<std::string, obs::BenchMetrics> current;
  // 40% below the ~1005 median: far past the 25% tolerance.
  current["service_throughput"] = {{"requests_per_sec", 600.0}};
  const auto report = obs::diff_benches(history, current, /*min_history=*/3);
  EXPECT_TRUE(report.regressed);
  ASSERT_EQ(report.results.size(), 1u);
  EXPECT_EQ(report.results[0].status, obs::DiffStatus::kRegressed);
  EXPECT_EQ(report.results[0].history_n, 4);
  EXPECT_NEAR(report.results[0].baseline, 1005.0, 1.0);
  EXPECT_NE(report.render().find("REGRESSED"), std::string::npos);
}

TEST(BenchDiff, ShallowHistoryIsAdvisoryOnly) {
  const std::string history =
      history_rows("service_throughput", "requests_per_sec", {1000, 1020});
  std::map<std::string, obs::BenchMetrics> current;
  current["service_throughput"] = {{"requests_per_sec", 600.0}};
  const auto report = obs::diff_benches(history, current, /*min_history=*/3);
  EXPECT_FALSE(report.regressed) << "2 rows must not hard-gate";
  EXPECT_TRUE(report.advisory);
  ASSERT_EQ(report.results.size(), 1u);
  EXPECT_EQ(report.results[0].status, obs::DiffStatus::kAdvisory);
}

TEST(BenchDiff, NoiseWithinToleranceAndImprovementsPass) {
  const std::string history = history_rows(
      "service_throughput", "requests_per_sec", {1000, 1020, 980, 1010});
  std::map<std::string, obs::BenchMetrics> current;
  current["service_throughput"] = {{"requests_per_sec", 950.0}};  // -5.5%
  auto report = obs::diff_benches(history, current);
  EXPECT_FALSE(report.regressed);
  EXPECT_EQ(report.results[0].status, obs::DiffStatus::kOk);

  current["service_throughput"] = {{"requests_per_sec", 2000.0}};
  report = obs::diff_benches(history, current);
  EXPECT_FALSE(report.regressed);
  EXPECT_EQ(report.results[0].status, obs::DiffStatus::kImproved);
}

TEST(BenchDiff, LowerIsBetterDirectionRespected) {
  const std::string history = history_rows("service_throughput",
                                           "p99_latency_us", {800, 820, 790});
  std::map<std::string, obs::BenchMetrics> current;
  current["service_throughput"] = {{"p99_latency_us", 3000.0}};  // blowup
  auto report = obs::diff_benches(history, current);
  EXPECT_TRUE(report.regressed);

  current["service_throughput"] = {{"p99_latency_us", 100.0}};  // improved
  report = obs::diff_benches(history, current);
  EXPECT_FALSE(report.regressed);
  EXPECT_EQ(report.results[0].status, obs::DiffStatus::kImproved);
}

TEST(BenchDiff, MalformedHistoryLinesAreSkippedNotFatal) {
  std::string history = "this is not json\n{\"bench\": 42}\n";
  history += history_rows("kernels", "mlp_simd_speedup", {3.0, 3.1, 2.9});
  std::map<std::string, obs::BenchMetrics> current;
  current["kernels"] = {{"mlp_simd_speedup", 3.05}};
  const auto report = obs::diff_benches(history, current);
  EXPECT_EQ(report.history_rows, 3);
  EXPECT_FALSE(report.regressed);
  EXPECT_EQ(report.results[0].status, obs::DiffStatus::kOk);
}

TEST(BenchDiff, ExtractsMetricsAndServeScalePeak) {
  std::string bench_name;
  const auto metrics = obs::extract_bench_metrics(
      R"({"bench": "serve_scale", "meta": {"git_sha": "abc"},
          "sweep": [
            {"connections": 1, "requests_per_sec": 900.0},
            {"connections": 8, "requests_per_sec": 4200.0},
            {"connections": 16, "requests_per_sec": 3900.0}]})",
      bench_name);
  EXPECT_EQ(bench_name, "serve_scale");
  ASSERT_TRUE(metrics.count("peak_requests_per_sec"));
  EXPECT_DOUBLE_EQ(metrics.at("peak_requests_per_sec"), 4200.0);
  EXPECT_DOUBLE_EQ(metrics.at("peak_connections"), 8.0);
}

}  // namespace
}  // namespace qrc
