// Verification fuzz sweep: every benchmark family is compiled through the
// full deterministic pass pipeline (synthesis, SABRE layout/routing,
// re-synthesis, optimization tail including the measurement-sensitive
// RemoveDiagonalGatesBeforeMeasure) on rotating library devices, and every
// compiled circuit must verify `equivalent` against its input. Deliberate
// single-gate mutations of the compiled circuits must be flagged
// `not_equivalent` (>= 95% overall; a mutant accepted with confidence 1.0
// — i.e. by an exact tier — is an outright checker bug).
//
// This file keeps the grid moderate so it rides in every CI leg including
// ASan/UBSan; the exhaustive 2-12 qubit sweep over all devices lives in
// tools/qrc_verify_fuzz.cpp and runs behind the `long_fuzz` CTest label
// (cmake -DQRC_ENABLE_LONG_FUZZ=ON).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "../tools/verify_fuzz_common.hpp"
#include "bench_suite/benchmarks.hpp"
#include "core/predictor.hpp"
#include "device/library.hpp"
#include "verify/equivalence.hpp"
#include "verify/mutate.hpp"

namespace {

using qrc::bench::BenchmarkFamily;
using qrc::core::CompilationResult;
using qrc::ir::Circuit;
using qrc::verify::Verdict;
using qrc::verify_fuzz::measurement_equivalent_oracle;
using qrc::verify_fuzz::run_full_pipeline;

TEST(VerifyFuzzTest, EveryFamilyCompilesAndVerifiesOnRotatingDevices) {
  const auto& families = qrc::bench::all_families();
  const auto& devices = qrc::device::all_devices();
  int checked = 0;
  for (std::size_t idx = 0; idx < families.size(); ++idx) {
    const int n = 2 + static_cast<int>(idx % 6);  // 2..7: fits every device
    const auto* dev = devices[idx % devices.size()];
    const Circuit circuit =
        qrc::bench::make_benchmark(families[idx], n, 11 + idx);
    const auto result = run_full_pipeline(circuit, *dev, 11 + idx);
    const auto verdict = qrc::core::verify_compilation(circuit, result);
    EXPECT_EQ(verdict.verdict, Verdict::kEquivalent)
        << circuit.name() << " on " << dev->name() << " via "
        << qrc::verify::method_name(verdict.method) << ": "
        << verdict.detail;
    EXPECT_NE(verdict.method, qrc::verify::Method::kNone);
    ++checked;
  }
  EXPECT_EQ(checked, qrc::bench::kNumFamilies);
}

TEST(VerifyFuzzTest, BoundaryWidthsVerify) {
  // The 10-12 qubit corner on the big devices: compaction + the sampling
  // tier must keep routed washington circuits decidable.
  struct Case {
    BenchmarkFamily family;
    int qubits;
    qrc::device::DeviceId device;
  };
  const Case cases[] = {
      {BenchmarkFamily::kGhz, 12, qrc::device::DeviceId::kIbmqWashington},
      {BenchmarkFamily::kQft, 12, qrc::device::DeviceId::kIbmqWashington},
      {BenchmarkFamily::kWstate, 10, qrc::device::DeviceId::kIbmqMontreal},
      {BenchmarkFamily::kSu2Random, 11, qrc::device::DeviceId::kIonqHarmony},
      {BenchmarkFamily::kGraphState, 8, qrc::device::DeviceId::kOqcLucy},
      {BenchmarkFamily::kQaoa, 10, qrc::device::DeviceId::kRigettiAspenM2},
  };
  for (const auto& c : cases) {
    const auto& dev = qrc::device::get_device(c.device);
    const Circuit circuit = qrc::bench::make_benchmark(c.family, c.qubits, 5);
    const auto result = run_full_pipeline(circuit, dev, 5);
    const auto verdict = qrc::core::verify_compilation(circuit, result);
    EXPECT_EQ(verdict.verdict, Verdict::kEquivalent)
        << circuit.name() << " on " << dev.name() << " ("
        << verdict.checked_qubits
        << " active qubits): " << verdict.detail;
  }
}

TEST(VerifyFuzzTest, TrainedPolicySweepHasZeroRefutations) {
  // End-to-end hard invariant: a trained policy's verified compilations
  // (greedy rollouts over arbitrary pass interleavings, including the
  // canned fallback tail) are NEVER refuted by the equivalence gate. This
  // is the grid that exposed the PR 5 "known defect" (a fallback
  // compilation the miter refuted), which decomposed into three real
  // bugs: CommutativeCancellation merging rotations at the wrong slot,
  // routers emitting terminal measures before later swaps re-targeted
  // their wire, and check_mapped dropping measurement tolerance over
  // routing thoroughfares. Zero refutations is the contract — any
  // refutation is a miscompile or a checker soundness bug, not noise.
  qrc::core::PredictorConfig config;
  config.reward = qrc::reward::RewardKind::kFidelity;
  config.seed = 7;  // historically the most refutation-prone policy seed
  config.ppo.total_timesteps = 512;
  config.ppo.steps_per_update = 256;
  config.ppo.hidden_sizes = {16};
  qrc::core::Predictor predictor(config);
  (void)predictor.train(qrc::bench::benchmark_suite(2, 5, 6));
  const qrc::verify::VerifyOptions verify_options;
  const auto suite = qrc::bench::benchmark_suite(2, 7, 48);
  int fallbacks = 0;
  for (const auto& circuit : suite) {
    const auto result = predictor.compile_verified(circuit, verify_options);
    ASSERT_TRUE(result.verification.has_value());
    fallbacks += result.used_fallback ? 1 : 0;
    ASSERT_NE(result.verification->verdict, Verdict::kNotEquivalent)
        << circuit.name() << " on "
        << (result.device ? result.device->name() : std::string("-"))
        << " via "
        << qrc::verify::method_name(result.verification->method) << ": "
        << result.verification->detail;
  }
  // The sweep must keep exercising the fallback path, where the defect
  // historically lived.
  EXPECT_GE(fallbacks, 1);
}

TEST(VerifyFuzzTest, SeededMutationsAreFlagged) {
  const auto& families = qrc::bench::all_families();
  // Small devices keep the mutants inside oracle range.
  const qrc::device::DeviceId devices[] = {
      qrc::device::DeviceId::kOqcLucy, qrc::device::DeviceId::kIonqHarmony,
      qrc::device::DeviceId::kIbmqMontreal};
  int mutants = 0;
  int caught = 0;
  int refuted = 0;
  std::vector<std::string> misses;
  for (std::size_t idx = 0; idx < families.size(); ++idx) {
    const int n = 2 + static_cast<int>(idx % 4);  // 2..5
    const auto& dev = qrc::device::get_device(devices[idx % 3]);
    const Circuit circuit =
        qrc::bench::make_benchmark(families[idx], n, 23 + idx);
    const auto result = run_full_pipeline(circuit, dev, 23 + idx);
    ASSERT_EQ(qrc::core::verify_compilation(circuit, result).verdict,
              Verdict::kEquivalent)
        << circuit.name() << ": genuine compilation must verify before "
        << "mutation makes sense";
    for (std::uint64_t m = 0; m < 3; ++m) {
      const auto mutation = qrc::verify::mutate_single_gate(
          result.circuit, 131u * m + idx);
      if (!mutation.has_value() ||
          measurement_equivalent_oracle(mutation->circuit, result.circuit)) {
        continue;
      }
      CompilationResult mutated = result;
      mutated.circuit = mutation->circuit;
      const auto verdict = qrc::core::verify_compilation(circuit, mutated);
      ++mutants;
      // The gate blocks anything it cannot certify: a witnessed
      // refutation AND a kUnknown refusal (e.g. the mutation broke the
      // deferred-measurement structure) both count as caught; only a
      // mutant certified equivalent slipped through.
      if (verdict.verdict != Verdict::kEquivalent) {
        ++caught;
        if (verdict.verdict == Verdict::kNotEquivalent) {
          ++refuted;
        }
      } else {
        misses.push_back(circuit.name() + " on " + dev.name() + " (" +
                         mutation->description + "): " + verdict.detail);
      }
      // An exact tier certifying a genuine fault as equivalent would be a
      // soundness hole, not a statistical miss.
      EXPECT_FALSE(verdict.verdict == Verdict::kEquivalent &&
                   verdict.confidence >= 1.0)
          << mutation->description;
    }
  }
  ASSERT_GE(mutants, 30) << "mutation generator starved";
  std::string all_misses;
  for (const auto& miss : misses) {
    all_misses += "\n  " + miss;
  }
  EXPECT_GE(static_cast<double>(caught) / static_cast<double>(mutants), 0.95)
      << caught << "/" << mutants << " blocked; certified equivalent:"
      << all_misses;
  // Most blocked mutants should be witnessed refutations, not refusals.
  EXPECT_GE(refuted * 2, mutants) << refuted << "/" << mutants;
}

}  // namespace
