// Tests for the compile service subsystem: the LRU result cache, the
// multi-model registry, the JSONL protocol codecs, and the micro-batching
// scheduler — including the service-level guarantee that batching and
// caching never change results relative to a direct Predictor::compile().

#include <gtest/gtest.h>

#include <algorithm>
#include <future>
#include <random>
#include <thread>
#include <vector>

#include "bench_suite/benchmarks.hpp"
#include "core/predictor.hpp"
#include "ir/qasm.hpp"
#include "service/compile_service.hpp"
#include "service/jsonl.hpp"
#include "service/model_registry.hpp"
#include "service/result_cache.hpp"

namespace {

using qrc::bench::BenchmarkFamily;
using qrc::core::CompilationResult;
using qrc::core::Predictor;
using qrc::ir::Circuit;
using qrc::reward::RewardKind;
using qrc::service::CompileService;
using qrc::service::JsonValue;
using qrc::service::ModelRegistry;
using qrc::service::ResultCache;
using qrc::service::ServiceConfig;
using qrc::service::ServiceResponse;

Circuit small_ghz() {
  Circuit c(3, "ghz3");
  c.h(0);
  c.cx(0, 1);
  c.cx(1, 2);
  c.measure_all();
  return c;
}

/// One tiny trained model per reward objective, shared across tests (the
/// compile paths are const and thread-safe, training is the slow part).
const Predictor& shared_model(RewardKind kind = RewardKind::kFidelity) {
  static auto* models = new std::map<RewardKind, Predictor>();
  const auto it = models->find(kind);
  if (it != models->end()) {
    return it->second;
  }
  qrc::core::PredictorConfig config;
  config.reward = kind;
  config.seed = 11;
  config.ppo.total_timesteps = 512;
  config.ppo.steps_per_update = 256;
  config.ppo.hidden_sizes = {16};
  Predictor predictor(config);
  (void)predictor.train({small_ghz()});
  return models->emplace(kind, std::move(predictor)).first->second;
}

/// Non-owning handle to a shared static model.
std::shared_ptr<const Predictor> shared_handle(
    RewardKind kind = RewardKind::kFidelity) {
  return {&shared_model(kind), [](const Predictor*) {}};
}

std::vector<Circuit> small_suite() {
  std::vector<Circuit> suite;
  for (const int n : {2, 3, 4}) {
    suite.push_back(
        qrc::bench::make_benchmark(BenchmarkFamily::kGhz, n, 1));
    suite.push_back(
        qrc::bench::make_benchmark(BenchmarkFamily::kVqe, n, 1));
  }
  return suite;
}

CompilationResult dummy_result(double reward) {
  CompilationResult r;
  r.reward = reward;
  return r;
}

// ------------------------------------------------------------- the cache --

TEST(ResultCacheTest, HitMissAndRecencyCounters) {
  ResultCache cache(2);
  EXPECT_TRUE(cache.enabled());
  EXPECT_FALSE(cache.get("a").has_value());
  cache.put("a", dummy_result(0.1));
  const auto hit = cache.get("a");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->reward, 0.1);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.evictions, 0u);
}

TEST(ResultCacheTest, EvictsLeastRecentlyUsed) {
  ResultCache cache(2);
  cache.put("a", dummy_result(0.1));
  cache.put("b", dummy_result(0.2));
  ASSERT_TRUE(cache.get("a").has_value());  // refresh "a"; "b" is now LRU
  cache.put("c", dummy_result(0.3));        // evicts "b"
  EXPECT_TRUE(cache.get("a").has_value());
  EXPECT_FALSE(cache.get("b").has_value());
  EXPECT_TRUE(cache.get("c").has_value());
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(ResultCacheTest, ReinsertRefreshesInsteadOfDuplicating) {
  ResultCache cache(2);
  cache.put("a", dummy_result(0.1));
  cache.put("b", dummy_result(0.2));
  cache.put("a", dummy_result(0.1));  // refresh: "b" becomes LRU
  cache.put("c", dummy_result(0.3));
  EXPECT_TRUE(cache.get("a").has_value());
  EXPECT_FALSE(cache.get("b").has_value());
  EXPECT_EQ(cache.stats().insertions, 3u);  // a, b, c; the refresh is not one
}

TEST(ResultCacheTest, ZeroCapacityDisables) {
  ResultCache cache(0);
  EXPECT_FALSE(cache.enabled());
  cache.put("a", dummy_result(0.1));
  EXPECT_FALSE(cache.get("a").has_value());
  EXPECT_EQ(cache.size(), 0u);
}

// ---------------------------------------------------------- the registry --

TEST(ModelRegistryTest, AddFindNames) {
  ModelRegistry registry;
  EXPECT_EQ(registry.size(), 0u);
  EXPECT_EQ(registry.find("fidelity"), nullptr);
  registry.add("fidelity", shared_handle());
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_NE(registry.find("fidelity"), nullptr);
  EXPECT_EQ(registry.names(), std::vector<std::string>{"fidelity"});
  EXPECT_NO_THROW((void)registry.at("fidelity"));
  EXPECT_THROW((void)registry.at("nope"), std::runtime_error);
}

TEST(ModelRegistryTest, RejectsDuplicatesEmptyNamesAndUntrainedModels) {
  ModelRegistry registry;
  registry.add("m", shared_handle());
  EXPECT_THROW(registry.add("m", shared_handle()), std::invalid_argument);
  EXPECT_THROW(registry.add("", shared_handle()), std::invalid_argument);
  EXPECT_THROW(registry.add("untrained", Predictor({})), std::logic_error);
}

// ------------------------------------------------------------ the jsonl ---

TEST(JsonlTest, ParsesRequestLines) {
  const auto r = qrc::service::parse_serve_request(
      R"({"id": "r1", "model": "fid", "qasm": "qreg q[1];\nh q[0];"})");
  EXPECT_EQ(r.id, "r1");
  EXPECT_EQ(r.model, "fid");
  EXPECT_EQ(r.qasm, "qreg q[1];\nh q[0];");
}

TEST(JsonlTest, NumericIdsAndOmittedFieldsAreTolerated) {
  const auto r =
      qrc::service::parse_serve_request(R"({"id": 7, "qasm": "x"})");
  EXPECT_EQ(r.id, "7");
  EXPECT_EQ(r.model, "");  // -> service default model
}

TEST(JsonlTest, RejectsMalformedRequests) {
  EXPECT_THROW((void)qrc::service::parse_serve_request("not json"),
               std::runtime_error);
  EXPECT_THROW((void)qrc::service::parse_serve_request(R"(["array"])"),
               std::runtime_error);
  EXPECT_THROW((void)qrc::service::parse_serve_request(R"({"id":"x"})"),
               std::runtime_error);  // missing qasm
  EXPECT_THROW(
      (void)qrc::service::parse_serve_request(R"({"qasm": 42})"),
      std::runtime_error);  // mistyped qasm
  EXPECT_THROW(
      (void)qrc::service::parse_serve_request(R"({"qasm":"x"} trailing)"),
      std::runtime_error);
}

TEST(JsonlTest, ValueParserHandlesEscapesNestingAndCanonicalDump) {
  const auto v = JsonValue::parse(
      " {\"b\": 1, \"a\": [true, null, \"x\\n\\u00e9\"], \"c\": -2.5e-1} ");
  EXPECT_EQ(v.dump(), "{\"a\":[true,null,\"x\\n\u00e9\"],\"b\":1,\"c\":-0.25}");
  EXPECT_THROW((void)JsonValue::parse("{\"a\":}"), std::runtime_error);
  EXPECT_THROW((void)JsonValue::parse("\"unterminated"), std::runtime_error);
  EXPECT_THROW((void)JsonValue::parse("{\"a\":1,}"), std::runtime_error);
}

TEST(JsonlTest, RecoversTheIdFromInvalidRequests) {
  // Validation failures must still echo the id so pipelined clients can
  // correlate the error line.
  EXPECT_EQ(qrc::service::extract_request_id(R"({"id":"r7","qasm":42})"),
            "r7");
  EXPECT_EQ(qrc::service::extract_request_id(R"({"id":7})"), "7");
  EXPECT_EQ(qrc::service::extract_request_id(R"({"qasm":"x"})"), "");
  EXPECT_EQ(qrc::service::extract_request_id("not json"), "");
  EXPECT_EQ(qrc::service::extract_request_id(R"({"id":[1]})"), "");
}

TEST(JsonlTest, RejectsUnknownRequestFields) {
  // A typoed "verifi" must produce an error line, not a silently
  // unverified compilation.
  try {
    (void)qrc::service::parse_serve_request(
        R"({"qasm": "x", "verifi": true})");
    FAIL() << "unknown field accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("verifi"), std::string::npos)
        << e.what();
  }
  EXPECT_THROW((void)qrc::service::parse_serve_request(
                   R"({"qasm": "x", "Model": "m"})"),
               std::runtime_error);  // wrong case is unknown too
}

TEST(JsonlTest, ParsesTheVerifyFlag) {
  EXPECT_FALSE(
      qrc::service::parse_serve_request(R"({"qasm": "x"})").verify);
  EXPECT_TRUE(qrc::service::parse_serve_request(
                  R"({"qasm": "x", "verify": true})")
                  .verify);
  EXPECT_FALSE(qrc::service::parse_serve_request(
                   R"({"qasm": "x", "verify": false})")
                   .verify);
  EXPECT_THROW((void)qrc::service::parse_serve_request(
                   R"({"qasm": "x", "verify": "yes"})"),
               std::runtime_error);
}

TEST(JsonlTest, ResponseCarriesVerdictFieldsOnlyWhenVerified) {
  ServiceResponse response;
  response.id = "v1";
  response.model = "fid";
  response.result.circuit = small_ghz();
  const auto plain =
      JsonValue::parse(qrc::service::serve_response_line(response));
  EXPECT_EQ(plain.as_object().count("verdict"), 0U);

  qrc::verify::VerifyResult verification;
  verification.verdict = qrc::verify::Verdict::kEquivalent;
  verification.method = qrc::verify::Method::kCliffordTableau;
  verification.confidence = 1.0;
  response.result.verification = verification;
  const auto verified =
      JsonValue::parse(qrc::service::serve_response_line(response));
  const auto& obj = verified.as_object();
  EXPECT_EQ(obj.at("verdict").as_string(), "equivalent");
  EXPECT_EQ(obj.at("verify_method").as_string(), "clifford_tableau");
  EXPECT_EQ(obj.at("verify_confidence").as_number(), 1.0);
}

TEST(JsonlTest, QuoteRoundTripsThroughTheParser) {
  const std::string nasty = "line1\nline2\t\"quoted\" \\slash\x01";
  const auto parsed = JsonValue::parse(qrc::service::json_quote(nasty));
  EXPECT_EQ(parsed.as_string(), nasty);
}

TEST(JsonlTest, ResponseAndErrorLinesAreValidJson) {
  ServiceResponse response;
  response.id = "r\"1";
  response.model = "fid";
  response.result.circuit = small_ghz();
  response.result.reward = 0.75;
  response.cached = true;
  response.latency_us = 42;
  const auto line = qrc::service::serve_response_line(response);
  const auto v = JsonValue::parse(line);
  const auto& obj = v.as_object();
  EXPECT_EQ(obj.at("id").as_string(), "r\"1");
  EXPECT_EQ(obj.at("reward").as_number(), 0.75);
  EXPECT_TRUE(obj.at("device").is_null());  // no device chosen
  EXPECT_TRUE(obj.at("cached").as_bool());
  EXPECT_FALSE(obj.at("used_fallback").as_bool());
  EXPECT_EQ(obj.at("latency_us").as_number(), 42.0);
  // The embedded qasm parses back to the same circuit.
  EXPECT_TRUE(qrc::ir::from_qasm(obj.at("qasm").as_string()) ==
              response.result.circuit);

  const auto err =
      JsonValue::parse(qrc::service::serve_error_line("r2", "bad\nthing"));
  EXPECT_EQ(err.as_object().at("error").as_string(), "bad\nthing");
}

// ---------------------------------------------------------- the service ---

void expect_same_result(const CompilationResult& got,
                        const CompilationResult& want,
                        const std::string& context) {
  EXPECT_EQ(got.action_trace, want.action_trace) << context;
  EXPECT_EQ(got.reward, want.reward) << context;
  EXPECT_EQ(got.used_fallback, want.used_fallback) << context;
  EXPECT_EQ(got.device, want.device) << context;
  EXPECT_TRUE(got.circuit == want.circuit) << context;
  EXPECT_EQ(got.initial_layout, want.initial_layout) << context;
  EXPECT_EQ(got.final_layout, want.final_layout) << context;
}

TEST(CompileServiceTest, ConcurrentSubmissionsMatchDirectCompileExactly) {
  // The acceptance bar: for any interleaving of concurrent submissions,
  // micro-batching and caching must not change any request's result.
  const auto suite = small_suite();
  std::vector<CompilationResult> direct;
  direct.reserve(suite.size());
  for (const auto& circuit : suite) {
    direct.push_back(shared_model().compile(circuit));
  }

  ServiceConfig config;
  config.max_batch = 4;
  config.max_wait_us = 500;
  config.cache_entries = 64;
  CompileService service(config);
  service.registry().add("fidelity", shared_handle());

  // Every circuit requested twice, submissions shuffled across 3 threads.
  std::vector<int> order;
  for (int copy = 0; copy < 2; ++copy) {
    for (std::size_t i = 0; i < suite.size(); ++i) {
      order.push_back(static_cast<int>(i));
    }
  }
  std::shuffle(order.begin(), order.end(), std::mt19937_64(42));

  std::vector<std::future<ServiceResponse>> futures(order.size());
  {
    std::vector<std::thread> clients;
    const std::size_t shard = order.size() / 3;
    for (int t = 0; t < 3; ++t) {
      clients.emplace_back([&, t] {
        const std::size_t lo = static_cast<std::size_t>(t) * shard;
        const std::size_t hi =
            t == 2 ? order.size() : lo + shard;
        for (std::size_t i = lo; i < hi; ++i) {
          futures[i] = service.submit("req" + std::to_string(i), "",
                                      suite[static_cast<std::size_t>(
                                          order[i])]);
        }
      });
    }
    for (auto& c : clients) {
      c.join();
    }
  }

  for (std::size_t i = 0; i < order.size(); ++i) {
    const ServiceResponse response = futures[i].get();
    EXPECT_EQ(response.id, "req" + std::to_string(i));
    EXPECT_EQ(response.model, "fidelity");
    EXPECT_GE(response.latency_us, 0);
    expect_same_result(
        response.result,
        direct[static_cast<std::size_t>(order[i])],
        suite[static_cast<std::size_t>(order[i])].name());
  }

  const auto stats = service.stats();
  EXPECT_EQ(stats.requests, order.size());
  // Every miss is queued exactly once; batches partition the misses.
  EXPECT_EQ(stats.cache_hits + stats.cache_misses, stats.requests);
  EXPECT_EQ(stats.batched_requests, stats.cache_misses);
  std::uint64_t histogram_total = 0;
  for (const auto& [size, count] : stats.batch_size_histogram) {
    EXPECT_GE(size, 1);
    EXPECT_LE(size, config.max_batch);
    histogram_total += static_cast<std::uint64_t>(size) * count;
  }
  EXPECT_EQ(histogram_total, stats.batched_requests);
}

TEST(CompileServiceTest, RepeatRequestIsServedFromTheCache) {
  CompileService service{ServiceConfig{}};
  service.registry().add("fidelity", shared_handle());
  const Circuit circuit = small_ghz();

  const auto first = service.compile("fidelity", circuit);
  EXPECT_FALSE(first.cached);
  const auto second = service.compile("fidelity", circuit);
  EXPECT_TRUE(second.cached);
  expect_same_result(second.result, first.result, "cached replay");

  // Same content under a different name still hits (keys ignore names).
  Circuit renamed = small_ghz();
  renamed.set_name("anonymous");
  EXPECT_TRUE(service.compile("fidelity", renamed).cached);

  const auto stats = service.stats();
  EXPECT_EQ(stats.requests, 3u);
  EXPECT_EQ(stats.cache_hits, 2u);
}

TEST(CompileServiceTest, VerifyFlagGatesAndMatchesDirectPredictor) {
  CompileService service{ServiceConfig{}};
  service.registry().add("fidelity", shared_handle());
  const Circuit circuit = small_ghz();

  // verify=false: no verification payload.
  const auto plain = service.submit("p", "fidelity", circuit).get();
  EXPECT_FALSE(plain.result.verification.has_value());

  // verify=true on a cache hit: the hit rides the lane and is re-verified
  // there (deterministic, so the verdict matches a fresh compilation).
  const auto cached = service.submit("c", "fidelity", circuit, true).get();
  EXPECT_TRUE(cached.cached);
  ASSERT_TRUE(cached.result.verification.has_value());
  EXPECT_EQ(cached.result.verification->verdict,
            qrc::verify::Verdict::kEquivalent)
      << cached.result.verification->detail;

  CompileService fresh{ServiceConfig{}};
  fresh.registry().add("fidelity", shared_handle());
  const auto verified = fresh.submit("v", "fidelity", circuit, true).get();
  EXPECT_FALSE(verified.cached);
  ASSERT_TRUE(verified.result.verification.has_value());
  EXPECT_EQ(verified.result.verification->verdict,
            qrc::verify::Verdict::kEquivalent);

  // The compiled artifact is identical to a direct unverified
  // Predictor::compile, and to the cached replay.
  const auto direct = shared_model().compile(circuit);
  expect_same_result(verified.result, direct, "verified vs direct");
  expect_same_result(cached.result, direct, "cached verified vs direct");
  // And the verdict matches what the Predictor gate computes directly.
  const auto direct_verdict = qrc::core::verify_compilation(
      circuit, direct, fresh.config().verify_options);
  EXPECT_EQ(verified.result.verification->verdict, direct_verdict.verdict);
  EXPECT_EQ(verified.result.verification->method, direct_verdict.method);
  EXPECT_EQ(verified.result.verification->confidence,
            direct_verdict.confidence);

  // Counters: both verifying services saw only equivalent verdicts.
  EXPECT_EQ(service.stats().verified, 1u);
  EXPECT_EQ(service.stats().refuted, 0u);
  EXPECT_EQ(fresh.stats().verified, 1u);
  EXPECT_EQ(fresh.stats().verify_unknown, 0u);
}

TEST(CompileServiceTest, CacheIsKeyedPerModel) {
  ServiceConfig config;
  CompileService service(config);
  service.registry().add("fidelity", shared_handle(RewardKind::kFidelity));
  service.registry().add("depth", shared_handle(RewardKind::kDepth));
  const Circuit circuit = small_ghz();

  EXPECT_FALSE(service.compile("fidelity", circuit).cached);
  // Other model: same circuit, distinct cache entry and its own batch lane.
  EXPECT_FALSE(service.compile("depth", circuit).cached);
  EXPECT_TRUE(service.compile("fidelity", circuit).cached);
  EXPECT_TRUE(service.compile("depth", circuit).cached);
}

TEST(CompileServiceTest, FusesConcurrentRequestsIntoOneBatch) {
  ServiceConfig config;
  config.max_batch = 4;
  config.max_wait_us = 2'000'000;  // plenty: the batch closes on count
  config.cache_entries = 0;        // no dedupe, count raw batch size
  CompileService service(config);
  service.registry().add("fidelity", shared_handle());

  const auto suite = small_suite();
  std::vector<std::future<ServiceResponse>> futures;
  futures.reserve(4);
  for (int i = 0; i < 4; ++i) {
    futures.push_back(service.submit(std::to_string(i), "fidelity",
                                     suite[static_cast<std::size_t>(i)]));
  }
  for (auto& f : futures) {
    (void)f.get();
  }
  const auto stats = service.stats();
  EXPECT_EQ(stats.requests, 4u);
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.max_batch_size, 4);
  EXPECT_EQ(stats.batch_size_histogram.at(4), 1u);
}

TEST(CompileServiceTest, ModelsAreHotAddableAndUnknownModelsAreRejected) {
  CompileService service{ServiceConfig{}};
  EXPECT_THROW((void)service.submit("1", "", small_ghz()),
               std::runtime_error);  // nothing registered yet
  service.registry().add("fidelity", shared_handle());
  EXPECT_NO_THROW((void)service.compile("", small_ghz()));
  EXPECT_THROW((void)service.submit("2", "nope", small_ghz()),
               std::runtime_error);

  // With two models and no default, requests must name one.
  service.registry().add("depth", shared_handle(RewardKind::kDepth));
  EXPECT_THROW((void)service.submit("3", "", small_ghz()),
               std::runtime_error);
}

TEST(CompileServiceTest, DefaultModelConfigRoutesAnonymousRequests) {
  ServiceConfig config;
  config.default_model = "depth";
  CompileService service(config);
  service.registry().add("fidelity", shared_handle(RewardKind::kFidelity));
  service.registry().add("depth", shared_handle(RewardKind::kDepth));
  EXPECT_EQ(service.compile("", small_ghz()).model, "depth");
}

TEST(CompileServiceTest, ShutdownDrainsAllPendingRequests) {
  const auto suite = small_suite();
  std::vector<std::future<ServiceResponse>> futures;
  {
    ServiceConfig config;
    config.max_batch = 100;          // never closes on count...
    config.max_wait_us = 10'000'000; // ...nor (practically) on the window
    CompileService service(config);
    service.registry().add("fidelity", shared_handle());
    for (std::size_t i = 0; i < suite.size(); ++i) {
      futures.push_back(
          service.submit(std::to_string(i), "fidelity", suite[i]));
    }
    // Destructor must flush the lane instead of abandoning the futures.
  }
  for (auto& f : futures) {
    const auto response = f.get();
    EXPECT_NE(response.result.device, nullptr);
  }
}

TEST(CompileServiceTest, RejectsNonsenseConfigs) {
  ServiceConfig bad_batch;
  bad_batch.max_batch = 0;
  EXPECT_THROW(CompileService{bad_batch}, std::invalid_argument);
  ServiceConfig bad_wait;
  bad_wait.max_wait_us = -1;
  EXPECT_THROW(CompileService{bad_wait}, std::invalid_argument);
}

}  // namespace
