// Tests for the linear-algebra substrate: matrix algebra, Euler
// decompositions, magic-basis properties, and the KAK decomposition.

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "la/euler.hpp"
#include "la/mat2.hpp"
#include "la/mat4.hpp"
#include "la/weyl.hpp"

namespace {

using qrc::la::cplx;
using qrc::la::kPi;
using qrc::la::Mat2;
using qrc::la::Mat4;

/// Haar-ish random 2x2 unitary from random rotation angles.
Mat2 random_unitary2(std::mt19937_64& rng) {
  std::uniform_real_distribution<double> ang(-kPi, kPi);
  const Mat2 u = qrc::la::rz_mat(ang(rng)) * qrc::la::ry_mat(ang(rng)) *
                 qrc::la::rz_mat(ang(rng));
  return u * std::exp(cplx{0.0, ang(rng)});
}

/// Random 4x4 unitary built from alternating local rotations and canonical
/// interactions — covers the full local-equivalence landscape.
Mat4 random_unitary4(std::mt19937_64& rng) {
  std::uniform_real_distribution<double> ang(-kPi, kPi);
  Mat4 u = qrc::la::kron(random_unitary2(rng), random_unitary2(rng));
  u = u * qrc::la::canonical_gate(ang(rng), ang(rng), ang(rng));
  u = u * qrc::la::kron(random_unitary2(rng), random_unitary2(rng));
  return u;
}

// ---------------------------------------------------------------- Mat2 ----

TEST(Mat2Test, IdentityIsUnitary) {
  EXPECT_TRUE(Mat2::identity().is_unitary());
}

TEST(Mat2Test, PauliMatricesAreUnitaryAndInvolutions) {
  for (const Mat2& p :
       {qrc::la::x_mat(), qrc::la::y_mat(), qrc::la::z_mat()}) {
    EXPECT_TRUE(p.is_unitary());
    EXPECT_TRUE((p * p).approx_equal(Mat2::identity()));
  }
}

TEST(Mat2Test, SxSquaredIsX) {
  EXPECT_TRUE((qrc::la::sx_mat() * qrc::la::sx_mat())
                  .approx_equal(qrc::la::x_mat()));
}

TEST(Mat2Test, SxdgIsInverseOfSx) {
  EXPECT_TRUE((qrc::la::sx_mat() * qrc::la::sxdg_mat())
                  .approx_equal(Mat2::identity()));
}

TEST(Mat2Test, HadamardSelfInverse) {
  const Mat2 h = qrc::la::h_mat();
  EXPECT_TRUE((h * h).approx_equal(Mat2::identity()));
}

TEST(Mat2Test, SSquaredIsZ) {
  EXPECT_TRUE(
      (qrc::la::s_mat() * qrc::la::s_mat()).approx_equal(qrc::la::z_mat()));
}

TEST(Mat2Test, TSquaredIsS) {
  EXPECT_TRUE(
      (qrc::la::t_mat() * qrc::la::t_mat()).approx_equal(qrc::la::s_mat()));
}

TEST(Mat2Test, RotationsAreUnitaryForRandomAngles) {
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> ang(-2.0 * kPi, 2.0 * kPi);
  for (int i = 0; i < 50; ++i) {
    const double t = ang(rng);
    EXPECT_TRUE(qrc::la::rx_mat(t).is_unitary());
    EXPECT_TRUE(qrc::la::ry_mat(t).is_unitary());
    EXPECT_TRUE(qrc::la::rz_mat(t).is_unitary());
  }
}

TEST(Mat2Test, RzComposesAdditively) {
  const Mat2 a = qrc::la::rz_mat(0.3) * qrc::la::rz_mat(0.4);
  EXPECT_TRUE(a.approx_equal(qrc::la::rz_mat(0.7)));
}

TEST(Mat2Test, U3CoversNamedGates) {
  // H = U3(pi/2, 0, pi) up to phase.
  EXPECT_TRUE(qrc::la::u3_mat(kPi / 2.0, 0.0, kPi).equal_up_to_phase(
      qrc::la::h_mat()));
  // X = U3(pi, 0, pi).
  EXPECT_TRUE(
      qrc::la::u3_mat(kPi, 0.0, kPi).equal_up_to_phase(qrc::la::x_mat()));
}

TEST(Mat2Test, EqualUpToPhaseDetectsPhaseDifference) {
  const Mat2 h = qrc::la::h_mat();
  const Mat2 hp = h * std::exp(cplx{0.0, 1.234});
  EXPECT_TRUE(h.equal_up_to_phase(hp));
  EXPECT_FALSE(h.equal_up_to_phase(qrc::la::x_mat()));
}

TEST(Mat2Test, DetAndTrace) {
  const Mat2 z = qrc::la::z_mat();
  EXPECT_NEAR(std::abs(z.det() - cplx{-1.0, 0.0}), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(z.trace()), 0.0, 1e-12);
}

// ---------------------------------------------------------------- Mat4 ----

TEST(Mat4Test, KronOfIdentitiesIsIdentity) {
  EXPECT_TRUE(qrc::la::kron(Mat2::identity(), Mat2::identity())
                  .approx_equal(Mat4::identity()));
}

TEST(Mat4Test, CxMatricesAreUnitarySelfInverse) {
  for (const Mat4& m : {qrc::la::cx01_mat(), qrc::la::cx10_mat(),
                        qrc::la::cz_mat(), qrc::la::swap_mat()}) {
    EXPECT_TRUE(m.is_unitary());
    EXPECT_TRUE((m * m).approx_equal(Mat4::identity()));
  }
}

TEST(Mat4Test, SwapConjugationExchangesTensorFactors) {
  std::mt19937_64 rng(11);
  const Mat2 a = random_unitary2(rng);
  const Mat2 b = random_unitary2(rng);
  const Mat4 lhs =
      qrc::la::swap_mat() * qrc::la::kron(a, b) * qrc::la::swap_mat();
  EXPECT_TRUE(lhs.approx_equal(qrc::la::kron(b, a)));
}

TEST(Mat4Test, CxConjugationStabilizerRelations) {
  // CX (control q0, target q1): X_{q0} -> X_{q0} X_{q1}.
  const Mat4 cx = qrc::la::cx01_mat();
  const Mat4 x0 = qrc::la::kron(Mat2::identity(), qrc::la::x_mat());
  const Mat4 xx = qrc::la::kron(qrc::la::x_mat(), qrc::la::x_mat());
  EXPECT_TRUE((cx * x0 * cx).approx_equal(xx));
  // Z_{q1} -> Z_{q0} Z_{q1}.
  const Mat4 z1 = qrc::la::kron(qrc::la::z_mat(), Mat2::identity());
  const Mat4 zz = qrc::la::kron(qrc::la::z_mat(), qrc::la::z_mat());
  EXPECT_TRUE((cx * z1 * cx).approx_equal(zz));
}

TEST(Mat4Test, DetOfKronEqualsProductOfDetsSquared) {
  std::mt19937_64 rng(3);
  const Mat2 a = random_unitary2(rng);
  const Mat2 b = random_unitary2(rng);
  const cplx expected = a.det() * a.det() * b.det() * b.det();
  EXPECT_NEAR(std::abs(qrc::la::kron(a, b).det() - expected), 0.0, 1e-9);
}

TEST(Mat4Test, TensorDecompositionRoundTrip) {
  std::mt19937_64 rng(5);
  for (int i = 0; i < 20; ++i) {
    const Mat2 a = random_unitary2(rng);
    const Mat2 b = random_unitary2(rng);
    const Mat4 m = qrc::la::kron(a, b);
    Mat2 ra;
    Mat2 rb;
    ASSERT_TRUE(qrc::la::decompose_tensor_product(m, ra, rb));
    EXPECT_TRUE(qrc::la::kron(ra, rb).approx_equal(m, 1e-7));
  }
}

TEST(Mat4Test, TensorDecompositionRejectsEntanglingGate) {
  Mat2 a;
  Mat2 b;
  EXPECT_FALSE(qrc::la::decompose_tensor_product(qrc::la::cx01_mat(), a, b));
}

TEST(Mat4Test, CanonicalGateUnitary) {
  std::mt19937_64 rng(13);
  std::uniform_real_distribution<double> ang(-kPi, kPi);
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(
        qrc::la::canonical_gate(ang(rng), ang(rng), ang(rng)).is_unitary());
  }
}

TEST(Mat4Test, CanonicalGateAtCxPointMatchesCxUpToLocals) {
  // canonical(pi/4, 0, 0) = e^{i pi XX / 4} is locally equivalent to CX:
  // they must share Makhlin invariants.
  const auto inv_a =
      qrc::la::local_invariants(qrc::la::canonical_gate(kPi / 4.0, 0.0, 0.0));
  const auto inv_b = qrc::la::local_invariants(qrc::la::cx01_mat());
  EXPECT_TRUE(inv_a.approx_equal(inv_b));
}

// --------------------------------------------------------------- Euler ----

TEST(EulerTest, ZyzRoundTripRandom) {
  std::mt19937_64 rng(17);
  for (int i = 0; i < 100; ++i) {
    const Mat2 u = random_unitary2(rng);
    const auto a = qrc::la::zyz_decompose(u);
    EXPECT_TRUE(qrc::la::zyz_compose(a).approx_equal(u, 1e-8))
        << "iteration " << i;
  }
}

TEST(EulerTest, ZxzRoundTripRandom) {
  std::mt19937_64 rng(19);
  for (int i = 0; i < 100; ++i) {
    const Mat2 u = random_unitary2(rng);
    const auto a = qrc::la::zxz_decompose(u);
    EXPECT_TRUE(qrc::la::zxz_compose(a).approx_equal(u, 1e-8))
        << "iteration " << i;
  }
}

TEST(EulerTest, U3RoundTripRandom) {
  std::mt19937_64 rng(23);
  for (int i = 0; i < 100; ++i) {
    const Mat2 u = random_unitary2(rng);
    const auto a = qrc::la::u3_decompose(u);
    EXPECT_TRUE(qrc::la::u3_compose(a).approx_equal(u, 1e-8))
        << "iteration " << i;
  }
}

TEST(EulerTest, ZxzxzRoundTripRandom) {
  std::mt19937_64 rng(29);
  for (int i = 0; i < 100; ++i) {
    const Mat2 u = random_unitary2(rng);
    const auto a = qrc::la::zxzxz_decompose(u);
    EXPECT_TRUE(qrc::la::zxzxz_compose(a).approx_equal(u, 1e-8))
        << "iteration " << i;
  }
}

TEST(EulerTest, ZyzOfDiagonalGate) {
  const auto a = qrc::la::zyz_decompose(qrc::la::rz_mat(0.7));
  EXPECT_NEAR(a.gamma, 0.0, 1e-9);
  EXPECT_TRUE(qrc::la::zyz_compose(a).approx_equal(qrc::la::rz_mat(0.7)));
}

TEST(EulerTest, ZyzOfAntiDiagonalGate) {
  const auto a = qrc::la::zyz_decompose(qrc::la::x_mat());
  EXPECT_NEAR(a.gamma, kPi, 1e-9);
  EXPECT_TRUE(qrc::la::zyz_compose(a).approx_equal(qrc::la::x_mat()));
}

TEST(EulerTest, ZxzxzOfHadamard) {
  const auto a = qrc::la::zxzxz_decompose(qrc::la::h_mat());
  EXPECT_TRUE(qrc::la::zxzxz_compose(a).approx_equal(qrc::la::h_mat(), 1e-9));
}

// ----------------------------------------------------------------- KAK ----

TEST(KakTest, JointDiagonalizationOfCommutingSymmetric) {
  // Build two commuting symmetric matrices from a shared eigenbasis.
  std::mt19937_64 rng(31);
  std::uniform_real_distribution<double> val(-2.0, 2.0);
  std::array<std::array<double, 4>, 4> q{};
  // Random orthogonal via Gram-Schmidt on a random matrix.
  std::array<std::array<double, 4>, 4> raw{};
  for (auto& row : raw) {
    for (double& v : row) {
      v = val(rng);
    }
  }
  for (int c = 0; c < 4; ++c) {
    std::array<double, 4> col{};
    for (int r = 0; r < 4; ++r) {
      col[static_cast<std::size_t>(r)] =
          raw[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)];
    }
    for (int prev = 0; prev < c; ++prev) {
      double dot = 0.0;
      for (int r = 0; r < 4; ++r) {
        dot += col[static_cast<std::size_t>(r)] *
               q[static_cast<std::size_t>(r)][static_cast<std::size_t>(prev)];
      }
      for (int r = 0; r < 4; ++r) {
        col[static_cast<std::size_t>(r)] -=
            dot *
            q[static_cast<std::size_t>(r)][static_cast<std::size_t>(prev)];
      }
    }
    double nrm = 0.0;
    for (const double v : col) {
      nrm += v * v;
    }
    nrm = std::sqrt(nrm);
    for (int r = 0; r < 4; ++r) {
      q[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)] =
          col[static_cast<std::size_t>(r)] / nrm;
    }
  }
  std::array<double, 4> da{};
  std::array<double, 4> db{};
  for (int i = 0; i < 4; ++i) {
    da[static_cast<std::size_t>(i)] = val(rng);
    db[static_cast<std::size_t>(i)] = val(rng);
  }
  std::array<std::array<double, 4>, 4> a{};
  std::array<std::array<double, 4>, 4> b{};
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      for (int k = 0; k < 4; ++k) {
        a[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] +=
            q[static_cast<std::size_t>(i)][static_cast<std::size_t>(k)] *
            da[static_cast<std::size_t>(k)] *
            q[static_cast<std::size_t>(j)][static_cast<std::size_t>(k)];
        b[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] +=
            q[static_cast<std::size_t>(i)][static_cast<std::size_t>(k)] *
            db[static_cast<std::size_t>(k)] *
            q[static_cast<std::size_t>(j)][static_cast<std::size_t>(k)];
      }
    }
  }
  std::array<std::array<double, 4>, 4> rot{};
  ASSERT_TRUE(qrc::la::joint_diagonalize(a, b, rot));
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      if (i != j) {
        EXPECT_NEAR(
            a[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)], 0.0,
            1e-8);
        EXPECT_NEAR(
            b[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)], 0.0,
            1e-8);
      }
    }
  }
}

TEST(KakTest, DecomposeRandomUnitaries) {
  std::mt19937_64 rng(37);
  for (int i = 0; i < 50; ++i) {
    const Mat4 u = random_unitary4(rng);
    const auto kak = qrc::la::kak_decompose(u);
    ASSERT_TRUE(kak.has_value()) << "iteration " << i;
    EXPECT_TRUE(kak->reconstruct().approx_equal(u, 1e-6)) << "iteration " << i;
  }
}

TEST(KakTest, DecomposeTensorProduct) {
  std::mt19937_64 rng(41);
  const Mat4 u = qrc::la::kron(random_unitary2(rng), random_unitary2(rng));
  const auto kak = qrc::la::kak_decompose(u);
  ASSERT_TRUE(kak.has_value());
  EXPECT_TRUE(kak->reconstruct().approx_equal(u, 1e-6));
}

TEST(KakTest, DecomposeCx) {
  const auto kak = qrc::la::kak_decompose(qrc::la::cx01_mat());
  ASSERT_TRUE(kak.has_value());
  EXPECT_TRUE(kak->reconstruct().approx_equal(qrc::la::cx01_mat(), 1e-6));
}

TEST(KakTest, CanonicalizePreservesUnitaryAndReachesWeylChamber) {
  std::mt19937_64 rng(43);
  for (int i = 0; i < 50; ++i) {
    const Mat4 u = random_unitary4(rng);
    auto kak = qrc::la::kak_decompose(u);
    ASSERT_TRUE(kak.has_value()) << "iteration " << i;
    kak->canonicalize();
    EXPECT_TRUE(kak->reconstruct().approx_equal(u, 1e-6)) << "iteration " << i;
    EXPECT_LE(kak->x, kPi / 4.0 + 1e-9) << "iteration " << i;
    EXPECT_GE(kak->x, kak->y - 1e-9) << "iteration " << i;
    EXPECT_GE(kak->y, std::abs(kak->z) - 1e-9) << "iteration " << i;
    EXPECT_GE(kak->y, -1e-9) << "iteration " << i;
  }
}

TEST(KakTest, CanonicalCoordinatesOfCxClass) {
  auto kak = qrc::la::kak_decompose(qrc::la::cx01_mat());
  ASSERT_TRUE(kak.has_value());
  kak->canonicalize();
  EXPECT_NEAR(kak->x, kPi / 4.0, 1e-6);
  EXPECT_NEAR(kak->y, 0.0, 1e-6);
  EXPECT_NEAR(kak->z, 0.0, 1e-6);
}

TEST(KakTest, CanonicalCoordinatesOfCzMatchCx) {
  auto kak = qrc::la::kak_decompose(qrc::la::cz_mat());
  ASSERT_TRUE(kak.has_value());
  kak->canonicalize();
  EXPECT_NEAR(kak->x, kPi / 4.0, 1e-6);
  EXPECT_NEAR(kak->y, 0.0, 1e-6);
  EXPECT_NEAR(std::abs(kak->z), 0.0, 1e-6);
}

TEST(KakTest, CanonicalCoordinatesOfSwap) {
  auto kak = qrc::la::kak_decompose(qrc::la::swap_mat());
  ASSERT_TRUE(kak.has_value());
  kak->canonicalize();
  EXPECT_NEAR(kak->x, kPi / 4.0, 1e-6);
  EXPECT_NEAR(kak->y, kPi / 4.0, 1e-6);
  EXPECT_NEAR(std::abs(kak->z), kPi / 4.0, 1e-6);
}

TEST(KakTest, LocalInvariantsSeparateClasses) {
  const auto id = qrc::la::local_invariants(Mat4::identity());
  const auto cx = qrc::la::local_invariants(qrc::la::cx01_mat());
  const auto swap = qrc::la::local_invariants(qrc::la::swap_mat());
  EXPECT_FALSE(id.approx_equal(cx));
  EXPECT_FALSE(cx.approx_equal(swap));
  EXPECT_FALSE(id.approx_equal(swap));
}

TEST(KakTest, LocalInvariantsInvariantUnderLocals) {
  std::mt19937_64 rng(47);
  for (int i = 0; i < 20; ++i) {
    const Mat4 u = random_unitary4(rng);
    const Mat4 dressed = qrc::la::kron(random_unitary2(rng),
                                       random_unitary2(rng)) *
                         u *
                         qrc::la::kron(random_unitary2(rng),
                                       random_unitary2(rng));
    EXPECT_TRUE(qrc::la::local_invariants(u).approx_equal(
        qrc::la::local_invariants(dressed), 1e-6))
        << "iteration " << i;
  }
}

TEST(KakTest, CanonicalCoordsLocallyInvariant) {
  std::mt19937_64 rng(53);
  for (int i = 0; i < 10; ++i) {
    const Mat4 u = random_unitary4(rng);
    const Mat4 dressed =
        qrc::la::kron(random_unitary2(rng), random_unitary2(rng)) * u *
        qrc::la::kron(random_unitary2(rng), random_unitary2(rng));
    auto ka = qrc::la::kak_decompose(u);
    auto kb = qrc::la::kak_decompose(dressed);
    ASSERT_TRUE(ka.has_value());
    ASSERT_TRUE(kb.has_value());
    ka->canonicalize();
    kb->canonicalize();
    EXPECT_NEAR(ka->x, kb->x, 1e-5) << "iteration " << i;
    EXPECT_NEAR(ka->y, kb->y, 1e-5) << "iteration " << i;
    EXPECT_NEAR(std::abs(ka->z), std::abs(kb->z), 1e-5) << "iteration " << i;
  }
}

}  // namespace
