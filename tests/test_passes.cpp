// Tests for the compilation passes: commutation oracle, block collection,
// two-qubit resynthesis, basis translation, layout, routing, and all
// optimization passes. The load-bearing properties are (1) unitary
// preservation up to global phase, (2) connectivity of routed circuits,
// and (3) nativeness after basis translation.

#include <gtest/gtest.h>

#include <random>

#include "device/library.hpp"
#include "ir/sim.hpp"
#include "passes/blocks.hpp"
#include "passes/commutation.hpp"
#include "passes/layout/layout.hpp"
#include "passes/opt/cancellation.hpp"
#include "passes/opt/clifford_opt.hpp"
#include "passes/opt/composite.hpp"
#include "passes/opt/consolidate.hpp"
#include "passes/opt/one_qubit_opt.hpp"
#include "passes/routing/routing.hpp"
#include "passes/synthesis/basis_translator.hpp"
#include "passes/two_qubit_decomp.hpp"
#include "verify/equivalence.hpp"

namespace {

using qrc::device::Device;
using qrc::device::DeviceId;
using qrc::device::Platform;
using qrc::ir::Circuit;
using qrc::ir::GateKind;
using qrc::ir::Operation;
using qrc::la::kPi;
using qrc::passes::PassContext;

/// Random circuit over the full vocabulary (unitary gates only).
Circuit random_circuit(int n, int length, std::uint64_t seed,
                       bool clifford_heavy = false) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> ang(-kPi, kPi);
  std::uniform_int_distribution<int> qpick(0, n - 1);
  Circuit c(n, "random");
  for (int i = 0; i < length; ++i) {
    const int q = qpick(rng);
    int q2 = qpick(rng);
    while (q2 == q) {
      q2 = qpick(rng);
    }
    const int choice = std::uniform_int_distribution<int>(
        0, clifford_heavy ? 7 : 11)(rng);
    switch (choice) {
      case 0:
        c.h(q);
        break;
      case 1:
        c.s(q);
        break;
      case 2:
        c.cx(q, q2);
        break;
      case 3:
        c.x(q);
        break;
      case 4:
        c.cz(q, q2);
        break;
      case 5:
        c.sdg(q);
        break;
      case 6:
        c.sx(q);
        break;
      case 7:
        c.swap(q, q2);
        break;
      case 8:
        c.rz(ang(rng), q);
        break;
      case 9:
        c.t(q);
        break;
      case 10:
        c.rxx(ang(rng), q, q2);
        break;
      default:
        c.u3(ang(rng), ang(rng), ang(rng), q);
        break;
    }
  }
  return c;
}

/// Shared assertion: pass preserves the unitary up to global phase.
void expect_preserves_unitary(const qrc::passes::Pass& pass, int n,
                              std::uint64_t seed, bool clifford_heavy = false,
                              const Device* device = nullptr) {
  Circuit c = random_circuit(n, 40, seed, clifford_heavy);
  const Circuit original = c;
  PassContext ctx;
  ctx.device = device;
  (void)pass.run(c, ctx);
  EXPECT_TRUE(qrc::ir::circuits_equivalent(original, c, 4, seed))
      << pass.name() << " broke equivalence (seed " << seed << ")";
}

// ----------------------------------------------------------- commutation --

TEST(CommutationTest, DisjointOpsCommute) {
  Circuit c(4);
  c.cx(0, 1);
  c.cx(2, 3);
  EXPECT_TRUE(qrc::passes::ops_commute(c.ops()[0], c.ops()[1]));
}

TEST(CommutationTest, DiagonalGatesCommute) {
  Circuit c(2);
  c.rz(0.3, 0);
  c.cp(0.7, 0, 1);
  c.t(0);
  EXPECT_TRUE(qrc::passes::ops_commute(c.ops()[0], c.ops()[1]));
  EXPECT_TRUE(qrc::passes::ops_commute(c.ops()[1], c.ops()[2]));
}

TEST(CommutationTest, RzCommutesWithCxControl) {
  Circuit c(2);
  c.rz(0.5, 0);
  c.cx(0, 1);
  EXPECT_TRUE(qrc::passes::ops_commute(c.ops()[0], c.ops()[1]));
}

TEST(CommutationTest, RzDoesNotCommuteWithCxTarget) {
  Circuit c(2);
  c.rz(0.5, 1);
  c.cx(0, 1);
  EXPECT_FALSE(qrc::passes::ops_commute(c.ops()[0], c.ops()[1]));
}

TEST(CommutationTest, XCommutesWithCxTarget) {
  Circuit c(2);
  c.x(1);
  c.cx(0, 1);
  EXPECT_TRUE(qrc::passes::ops_commute(c.ops()[0], c.ops()[1]));
}

TEST(CommutationTest, CxSharedControlCommutes) {
  Circuit c(3);
  c.cx(0, 1);
  c.cx(0, 2);
  EXPECT_TRUE(qrc::passes::ops_commute(c.ops()[0], c.ops()[1]));
}

TEST(CommutationTest, CxCrossedDoesNotCommute) {
  Circuit c(2);
  c.cx(0, 1);
  c.cx(1, 0);
  EXPECT_FALSE(qrc::passes::ops_commute(c.ops()[0], c.ops()[1]));
}

TEST(CommutationTest, MatchesNumericOracleOnRandomPairs) {
  std::mt19937_64 rng(99);
  std::uniform_real_distribution<double> ang(-kPi, kPi);
  // Sanity sweep: h on shared qubit vs rotations.
  Circuit c(2);
  c.h(0);
  c.rx(ang(rng), 0);
  c.rz(ang(rng), 0);
  EXPECT_FALSE(qrc::passes::ops_commute(c.ops()[0], c.ops()[1]));
  EXPECT_FALSE(qrc::passes::ops_commute(c.ops()[1], c.ops()[2]));
}

TEST(CommutationTest, MeasureNeverCommutes) {
  Circuit c(1);
  c.measure(0);
  c.z(0);
  EXPECT_FALSE(qrc::passes::ops_commute(c.ops()[0], c.ops()[1]));
}

// ----------------------------------------------------------------- blocks --

TEST(BlocksTest, Collect1qRuns) {
  Circuit c(2);
  c.h(0);
  c.t(0);
  c.cx(0, 1);
  c.s(0);
  const auto runs = qrc::passes::collect_1q_runs(c);
  ASSERT_EQ(runs.size(), 2U);
  EXPECT_EQ(runs[0].op_indices, (std::vector<int>{0, 1}));
  EXPECT_EQ(runs[1].op_indices, (std::vector<int>{3}));
}

TEST(BlocksTest, RunMatrixMultipliesInOrder) {
  Circuit c(1);
  c.h(0);
  c.s(0);
  const auto runs = qrc::passes::collect_1q_runs(c);
  ASSERT_EQ(runs.size(), 1U);
  const auto m = qrc::passes::run_matrix(c, runs[0]);
  EXPECT_TRUE(m.approx_equal(qrc::la::s_mat() * qrc::la::h_mat()));
}

TEST(BlocksTest, Collect2qBlocksGroupsPairs) {
  Circuit c(3);
  c.h(0);       // leading 1q absorbed
  c.cx(0, 1);   // block A
  c.rz(0.2, 1); // inside A
  c.cx(0, 1);   // A
  c.cx(1, 2);   // closes A, starts B
  const auto blocks = qrc::passes::collect_2q_blocks(c);
  ASSERT_EQ(blocks.size(), 2U);
  EXPECT_EQ(blocks[0].qubit_a, 0);
  EXPECT_EQ(blocks[0].qubit_b, 1);
  EXPECT_EQ(blocks[0].two_qubit_count, 2);
  EXPECT_EQ(blocks[0].op_indices, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(blocks[1].two_qubit_count, 1);
}

TEST(BlocksTest, MeasureClosesBlocks) {
  Circuit c(2);
  c.cx(0, 1);
  c.measure(0);
  c.cx(0, 1);
  const auto blocks = qrc::passes::collect_2q_blocks(c);
  ASSERT_EQ(blocks.size(), 2U);
}

TEST(BlocksTest, CliffordBlocksStopAtNonClifford) {
  Circuit c(2);
  c.h(0);
  c.cx(0, 1);
  c.t(0);      // non-Clifford on support: closes
  c.cx(0, 1);
  c.s(1);
  const auto blocks = qrc::passes::collect_clifford_blocks(c);
  ASSERT_EQ(blocks.size(), 2U);
  EXPECT_EQ(blocks[0].op_indices, (std::vector<int>{0, 1}));
  EXPECT_EQ(blocks[1].op_indices, (std::vector<int>{3, 4}));
}

// ----------------------------------------------- two-qubit resynthesis ----

TEST(TwoQubitDecompTest, RandomUnitariesRebuildExactly) {
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> ang(-kPi, kPi);
  for (int trial = 0; trial < 30; ++trial) {
    Circuit mini = random_circuit(2, 12, 3000 + trial);
    const auto u = qrc::passes::two_qubit_circuit_unitary(mini);
    const auto resynth = qrc::passes::decompose_two_qubit_unitary(u);
    ASSERT_TRUE(resynth.has_value()) << "trial " << trial;
    const auto v = qrc::passes::two_qubit_circuit_unitary(*resynth);
    EXPECT_TRUE(v.equal_up_to_phase(u, 1e-6)) << "trial " << trial;
    EXPECT_LE(resynth->two_qubit_gate_count(), 4) << "trial " << trial;
  }
}

TEST(TwoQubitDecompTest, LocalUnitaryNeedsNoCx) {
  Circuit mini(2);
  mini.u3(0.4, 0.8, -0.3, 0);
  mini.u3(1.1, -0.6, 0.2, 1);
  const auto u = qrc::passes::two_qubit_circuit_unitary(mini);
  const auto resynth = qrc::passes::decompose_two_qubit_unitary(u);
  ASSERT_TRUE(resynth.has_value());
  EXPECT_EQ(resynth->two_qubit_gate_count(), 0);
}

TEST(TwoQubitDecompTest, DressedCxNeedsOneCx) {
  Circuit mini(2);
  mini.u3(0.4, 0.8, -0.3, 0);
  mini.cx(0, 1);
  mini.u3(1.1, -0.6, 0.2, 1);
  const auto u = qrc::passes::two_qubit_circuit_unitary(mini);
  const auto resynth = qrc::passes::decompose_two_qubit_unitary(u);
  ASSERT_TRUE(resynth.has_value());
  EXPECT_EQ(resynth->two_qubit_gate_count(), 1);
}

TEST(TwoQubitDecompTest, CzIsCxClass) {
  Circuit mini(2);
  mini.cz(0, 1);
  const auto u = qrc::passes::two_qubit_circuit_unitary(mini);
  const auto resynth = qrc::passes::decompose_two_qubit_unitary(u);
  ASSERT_TRUE(resynth.has_value());
  EXPECT_EQ(resynth->two_qubit_gate_count(), 1);
}

TEST(TwoQubitDecompTest, ZzInteractionNeedsTwoCx) {
  Circuit mini(2);
  mini.rzz(0.8, 0, 1);
  const auto u = qrc::passes::two_qubit_circuit_unitary(mini);
  const auto resynth = qrc::passes::decompose_two_qubit_unitary(u);
  ASSERT_TRUE(resynth.has_value());
  EXPECT_LE(resynth->two_qubit_gate_count(), 2);
}

TEST(TwoQubitDecompTest, SwapClassUsesThreeCx) {
  Circuit mini(2);
  mini.u3(0.3, 0.1, 0.9, 0);
  mini.swap(0, 1);
  mini.u3(0.7, -0.4, 0.5, 1);
  const auto u = qrc::passes::two_qubit_circuit_unitary(mini);
  const auto resynth = qrc::passes::decompose_two_qubit_unitary(u);
  ASSERT_TRUE(resynth.has_value());
  const auto v = qrc::passes::two_qubit_circuit_unitary(*resynth);
  EXPECT_TRUE(v.equal_up_to_phase(u, 1e-6));
  EXPECT_LE(resynth->two_qubit_gate_count(), 3);
}

// ------------------------------------------------------ basis translator --

TEST(BasisTranslatorTest, TranslatesToAllFourPlatforms) {
  for (const auto id : {DeviceId::kIbmqMontreal, DeviceId::kRigettiAspenM2,
                        DeviceId::kIonqHarmony, DeviceId::kOqcLucy}) {
    const Device& dev = qrc::device::get_device(id);
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      Circuit c = random_circuit(4, 30, seed * 13);
      const Circuit original = c;
      PassContext ctx;
      ctx.device = &dev;
      const qrc::passes::BasisTranslator translator;
      (void)translator.run(c, ctx);
      EXPECT_TRUE(dev.circuit_is_native(c)) << dev.name();
      EXPECT_TRUE(qrc::ir::circuits_equivalent(original, c, 4, seed))
          << dev.name() << " seed " << seed;
    }
  }
}

TEST(BasisTranslatorTest, ThreeQubitGatesLowered) {
  const Device& dev = qrc::device::get_device(DeviceId::kIbmqMontreal);
  Circuit c(3);
  c.ccx(0, 1, 2);
  c.ccz(0, 1, 2);
  c.cswap(0, 1, 2);
  const Circuit original = c;
  PassContext ctx;
  ctx.device = &dev;
  const qrc::passes::BasisTranslator translator;
  (void)translator.run(c, ctx);
  EXPECT_TRUE(dev.circuit_is_native(c));
  EXPECT_TRUE(c.max_gate_arity_at_most(2));
  EXPECT_TRUE(qrc::ir::circuits_equivalent(original, c));
}

TEST(BasisTranslatorTest, KeepsMeasuresAndBarriers) {
  const Device& dev = qrc::device::get_device(DeviceId::kIbmqMontreal);
  Circuit c(2);
  c.h(0);
  c.barrier();
  c.measure_all();
  PassContext ctx;
  ctx.device = &dev;
  const qrc::passes::BasisTranslator translator;
  (void)translator.run(c, ctx);
  const auto counts = c.count_ops();
  EXPECT_EQ(counts.at("measure"), 2);
  EXPECT_EQ(counts.at("barrier"), 1);
}

TEST(BasisTranslatorTest, TwoQubitDecompositionsStayOnPair) {
  // Post-mapping safety: every 2q gate in the translation of a 2q gate must
  // stay on the same pair.
  const Device& dev = qrc::device::get_device(DeviceId::kRigettiAspenM2);
  Circuit c(5);
  c.cx(2, 3);
  c.swap(0, 1);
  c.rzz(0.7, 3, 4);
  PassContext ctx;
  ctx.device = &dev;
  const qrc::passes::BasisTranslator translator;
  (void)translator.run(c, ctx);
  for (const Operation& op : c.ops()) {
    if (op.num_qubits() == 2) {
      const bool pair_23 = op.acts_on(2) && op.acts_on(3);
      const bool pair_01 = op.acts_on(0) && op.acts_on(1);
      const bool pair_34 = op.acts_on(3) && op.acts_on(4);
      EXPECT_TRUE(pair_23 || pair_01 || pair_34);
    }
  }
}

// --------------------------------------------------------------- layout ---

TEST(LayoutTest, TrivialLayoutIsIdentity) {
  const Device& dev = qrc::device::get_device(DeviceId::kIbmqMontreal);
  const Circuit c = random_circuit(5, 20, 42);
  const auto layout = qrc::passes::compute_layout(
      qrc::passes::LayoutKind::kTrivial, c, dev);
  EXPECT_EQ(layout, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(LayoutTest, DenseLayoutConnectedSubset) {
  const Device& dev = qrc::device::get_device(DeviceId::kIbmqMontreal);
  const Circuit c = random_circuit(6, 30, 43);
  const auto layout = qrc::passes::compute_layout(
      qrc::passes::LayoutKind::kDense, c, dev);
  ASSERT_EQ(layout.size(), 6U);
  // Injective and in range.
  std::set<int> used(layout.begin(), layout.end());
  EXPECT_EQ(used.size(), 6U);
  for (const int p : layout) {
    EXPECT_GE(p, 0);
    EXPECT_LT(p, dev.num_qubits());
  }
  // The chosen subset must be internally connected.
  int internal_edges = 0;
  for (const int a : used) {
    for (const int b : used) {
      if (a < b && dev.coupling().are_coupled(a, b)) {
        ++internal_edges;
      }
    }
  }
  EXPECT_GE(internal_edges, 5);  // spanning-tree minimum
}

TEST(LayoutTest, SabreLayoutValidAndDeterministic) {
  const Device& dev = qrc::device::get_device(DeviceId::kIbmqMontreal);
  const Circuit c = random_circuit(5, 25, 44);
  const auto a = qrc::passes::compute_layout(qrc::passes::LayoutKind::kSabre,
                                             c, dev, 7);
  const auto b = qrc::passes::compute_layout(qrc::passes::LayoutKind::kSabre,
                                             c, dev, 7);
  EXPECT_EQ(a, b);
  std::set<int> used(a.begin(), a.end());
  EXPECT_EQ(used.size(), a.size());
}

TEST(LayoutTest, ApplyLayoutRejectsNonInjective) {
  const Device& dev = qrc::device::get_device(DeviceId::kOqcLucy);
  const Circuit c = random_circuit(3, 10, 45);
  EXPECT_THROW(qrc::passes::apply_layout(c, {0, 0, 1}, dev),
               std::invalid_argument);
}

// -------------------------------------------------------------- routing ---

/// Routing property check on a small synthetic device so that full
/// statevector verification is possible.
void expect_routing_sound(qrc::passes::RoutingKind kind, std::uint64_t seed) {
  // 6-qubit line device (IBM platform).
  const Device dev("test_line6", Platform::kIBM,
                   qrc::device::CouplingMap::line(6), 99);
  Circuit logical = random_circuit(6, 25, seed);
  const auto outcome = qrc::passes::route(kind, logical, dev, seed);
  EXPECT_TRUE(dev.circuit_respects_topology(outcome.routed))
      << qrc::passes::routing_name(kind);
  // Permutation-aware equivalence.
  std::vector<int> identity(6);
  std::iota(identity.begin(), identity.end(), 0);
  EXPECT_TRUE(qrc::ir::mapped_circuit_equivalent(
      logical, outcome.routed, identity, outcome.permutation, 3, seed))
      << qrc::passes::routing_name(kind) << " seed " << seed;
}

TEST(RoutingTest, BasicSwapSound) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    expect_routing_sound(qrc::passes::RoutingKind::kBasicSwap, seed);
  }
}

TEST(RoutingTest, StochasticSwapSound) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    expect_routing_sound(qrc::passes::RoutingKind::kStochasticSwap, seed);
  }
}

TEST(RoutingTest, SabreSwapSound) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    expect_routing_sound(qrc::passes::RoutingKind::kSabreSwap, seed);
  }
}

TEST(RoutingTest, TketRoutingSound) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    expect_routing_sound(qrc::passes::RoutingKind::kTketRouting, seed);
  }
}

TEST(RoutingTest, AlreadyRoutedCircuitUnchanged) {
  const Device dev("test_line4", Platform::kIBM,
                   qrc::device::CouplingMap::line(4), 99);
  Circuit c(4);
  c.cx(0, 1);
  c.cx(1, 2);
  c.cx(2, 3);
  const auto outcome =
      qrc::passes::route(qrc::passes::RoutingKind::kSabreSwap, c, dev);
  EXPECT_EQ(outcome.swap_count, 0);
  EXPECT_EQ(outcome.routed.size(), c.size());
}

TEST(RoutingTest, SabreBeatsBasicOnHeavyCircuit) {
  // On a ring, SABRE's lookahead should use no more swaps than the
  // oblivious shortest-path router on average.
  const Device dev("test_ring8", Platform::kIBM,
                   qrc::device::CouplingMap::ring(8), 99);
  int basic_total = 0;
  int sabre_total = 0;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Circuit c = random_circuit(8, 40, 7000 + seed);
    basic_total +=
        qrc::passes::route(qrc::passes::RoutingKind::kBasicSwap, c, dev, seed)
            .swap_count;
    sabre_total +=
        qrc::passes::route(qrc::passes::RoutingKind::kSabreSwap, c, dev, seed)
            .swap_count;
  }
  EXPECT_LE(sabre_total, basic_total);
}

TEST(RoutingTest, TerminalMeasuresAreEmittedThroughTheFinalPlacement) {
  // A measure carries no classical operand — its record is tied to the
  // wire it is emitted on — so a swap after a mid-stream measure silently
  // re-targets the classical bit. Every router must emit terminal
  // measures after the whole swap network, translated through the final
  // permutation. (Regression: SABRE's DAG scheduler used to emit ready
  // measures early; the in-order routers emitted them mid-stream.)
  const Device dev("test_line3", Platform::kIBM,
                   qrc::device::CouplingMap::line(3), 99);
  Circuit c(3);
  c.h(0);
  c.cx(0, 1);
  c.measure(1);
  c.cx(0, 2);  // blocked on the line: forces a swap after the measure
  c.measure(0);
  c.measure(2);
  for (const auto kind :
       {qrc::passes::RoutingKind::kBasicSwap,
        qrc::passes::RoutingKind::kStochasticSwap,
        qrc::passes::RoutingKind::kSabreSwap,
        qrc::passes::RoutingKind::kTketRouting}) {
    const auto outcome = qrc::passes::route(kind, c, dev, 3);
    ASSERT_GE(outcome.swap_count, 1) << qrc::passes::routing_name(kind);
    int last_swap = -1;
    int first_measure = static_cast<int>(outcome.routed.ops().size());
    for (int i = 0; i < static_cast<int>(outcome.routed.ops().size()); ++i) {
      const auto k = outcome.routed.ops()[static_cast<std::size_t>(i)].kind();
      if (k == GateKind::kSWAP) {
        last_swap = i;
      }
      if (k == GateKind::kMeasure && i < first_measure) {
        first_measure = i;
      }
    }
    EXPECT_GT(first_measure, last_swap)
        << qrc::passes::routing_name(kind) << ": a measure precedes a swap";
    // End-to-end: the routed circuit must verify through the layouts,
    // including the readout-consistency check on the measured wires.
    const auto verdict = qrc::verify::EquivalenceChecker().check_mapped(
        c, outcome.routed, {}, outcome.permutation);
    EXPECT_EQ(verdict.verdict, qrc::verify::Verdict::kEquivalent)
        << qrc::passes::routing_name(kind) << ": " << verdict.detail;
  }
}

TEST(RoutingTest, RejectsThreeQubitGates) {
  const Device dev("test_line4", Platform::kIBM,
                   qrc::device::CouplingMap::line(4), 99);
  Circuit c(4);
  c.ccx(0, 1, 2);
  EXPECT_THROW(
      (void)qrc::passes::route(qrc::passes::RoutingKind::kBasicSwap, c, dev),
      std::invalid_argument);
}

// --------------------------------------------------- optimization passes --

TEST(OptPassTest, AllPassesPreserveUnitary) {
  const qrc::passes::CXCancellation cx_cancel;
  const qrc::passes::InverseCancellation inv_cancel;
  const qrc::passes::CommutativeCancellation comm_cancel;
  const qrc::passes::CommutativeInverseCancellation comm_inv;
  const qrc::passes::RemoveRedundancies redundancies;
  const qrc::passes::Optimize1qGatesDecomposition opt1q;
  const qrc::passes::ConsolidateBlocks consolidate;
  const qrc::passes::PeepholeOptimise2Q peephole;
  const qrc::passes::OptimizeCliffords opt_cliff;
  const qrc::passes::CliffordSimp cliff_simp;
  const qrc::passes::FullPeepholeOptimise full_peephole;
  const std::vector<const qrc::passes::Pass*> passes = {
      &cx_cancel, &inv_cancel, &comm_cancel,  &comm_inv,
      &redundancies, &opt1q,   &consolidate,  &peephole,
      &opt_cliff, &cliff_simp, &full_peephole};
  for (const auto* pass : passes) {
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      expect_preserves_unitary(*pass, 4, 500 + seed * 17, seed % 2 == 0);
    }
  }
}

TEST(OptPassTest, CxCancellationRemovesAdjacentPairs) {
  Circuit c(2);
  c.cx(0, 1);
  c.cx(0, 1);
  c.h(0);
  const qrc::passes::CXCancellation pass;
  EXPECT_TRUE(pass.run(c, {}));
  EXPECT_EQ(c.two_qubit_gate_count(), 0);
  EXPECT_EQ(c.gate_count(), 1);
}

TEST(OptPassTest, CxCancellationKeepsSeparatedPairs) {
  Circuit c(2);
  c.cx(0, 1);
  c.h(1);  // blocks
  c.cx(0, 1);
  const qrc::passes::CXCancellation pass;
  EXPECT_FALSE(pass.run(c, {}));
  EXPECT_EQ(c.two_qubit_gate_count(), 2);
}

TEST(OptPassTest, InverseCancellationHandlesNamedPairs) {
  Circuit c(1);
  c.h(0);
  c.h(0);
  c.s(0);
  c.sdg(0);
  c.t(0);
  c.tdg(0);
  c.rz(0.4, 0);
  c.rz(-0.4, 0);
  const qrc::passes::InverseCancellation pass;
  EXPECT_TRUE(pass.run(c, {}));
  EXPECT_EQ(c.gate_count(), 0);
}

TEST(OptPassTest, CommutativeCancellationThroughCxControl) {
  // rz(a) [cx] rz(-a) on the control cancels through the CX.
  Circuit c(2);
  c.rz(0.8, 0);
  c.cx(0, 1);
  c.rz(-0.8, 0);
  const qrc::passes::CommutativeCancellation pass;
  EXPECT_TRUE(pass.run(c, {}));
  EXPECT_EQ(c.gate_count(), 1);
  EXPECT_EQ(c.ops()[0].kind(), GateKind::kCX);
}

TEST(OptPassTest, CommutativeCancellationMergesRotations) {
  Circuit c(2);
  c.rz(0.3, 0);
  c.cx(0, 1);
  c.rz(0.4, 0);
  const qrc::passes::CommutativeCancellation pass;
  EXPECT_TRUE(pass.run(c, {}));
  EXPECT_EQ(c.gate_count(), 2);
  bool found = false;
  for (const Operation& op : c.ops()) {
    if (op.kind() == GateKind::kRZ) {
      EXPECT_NEAR(op.param(0), 0.7, 1e-12);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(OptPassTest, CommutativeCancellationMergesAtThePartnerSlot) {
  // ry(pi) and rz(pi) anticommute — they swap only up to a global phase —
  // so the commutation oracle lets ry(pi) move *forward* past the rz to
  // merge with ry(pi/2). The merged rotation must land at the later
  // partner's slot; placing it before the rz (the old behaviour) commutes
  // ry(pi/2) backward past a gate it does not commute with and produces a
  // genuinely different unitary.
  Circuit c(1);
  c.ry(kPi, 0);
  c.rz(kPi, 0);
  c.ry(kPi / 2, 0);
  const Circuit original = c;
  const qrc::passes::CommutativeCancellation pass;
  (void)pass.run(c, {});
  EXPECT_TRUE(qrc::ir::circuits_equivalent(original, c, 4, 11))
      << "CommutativeCancellation broke ry-rz-ry";
}

TEST(OptPassTest, CommutativeInverseCatchesCrossKind) {
  // s followed (through a commuting cx control) by rz(-pi/2): matrix-level
  // inverse up to phase.
  Circuit c(2);
  c.s(0);
  c.cx(0, 1);
  c.rz(-kPi / 2.0, 0);
  const qrc::passes::CommutativeInverseCancellation pass;
  EXPECT_TRUE(pass.run(c, {}));
  EXPECT_EQ(c.gate_count(), 1);
}

TEST(OptPassTest, RemoveDiagonalBeforeMeasure) {
  Circuit c(2);
  c.h(0);
  c.rz(0.3, 0);
  c.cz(0, 1);
  c.measure(0);
  c.measure(1);
  const qrc::passes::RemoveDiagonalGatesBeforeMeasure pass;
  EXPECT_TRUE(pass.run(c, {}));
  // rz and cz removed (peeled iteratively); h kept.
  EXPECT_EQ(c.gate_count(), 1);
  EXPECT_EQ(c.ops()[0].kind(), GateKind::kH);
}

TEST(OptPassTest, DiagonalKeptWhenOnlyOneQubitMeasured) {
  Circuit c(2);
  c.cz(0, 1);
  c.measure(0);
  c.h(1);  // qubit 1 not measured right after
  const qrc::passes::RemoveDiagonalGatesBeforeMeasure pass;
  EXPECT_FALSE(pass.run(c, {}));
  EXPECT_EQ(c.two_qubit_gate_count(), 1);
}

TEST(OptPassTest, Optimize1qFusesRuns) {
  Circuit c(1);
  c.h(0);
  c.t(0);
  c.h(0);
  c.s(0);
  c.rz(0.3, 0);
  const qrc::passes::Optimize1qGatesDecomposition pass;
  EXPECT_TRUE(pass.run(c, {}));
  EXPECT_EQ(c.gate_count(), 1);
  EXPECT_EQ(c.ops()[0].kind(), GateKind::kU3);
}

TEST(OptPassTest, Optimize1qUsesNativeBasisWithDevice) {
  const Device& dev = qrc::device::get_device(DeviceId::kIbmqMontreal);
  Circuit c(1);
  c.h(0);
  c.t(0);
  c.h(0);
  PassContext ctx;
  ctx.device = &dev;
  const qrc::passes::Optimize1qGatesDecomposition pass;
  EXPECT_TRUE(pass.run(c, ctx));
  EXPECT_TRUE(dev.circuit_is_native(c));
  EXPECT_LE(c.gate_count(), 5);
}

TEST(OptPassTest, Optimize1qDropsIdentityRun) {
  Circuit c(1);
  c.h(0);
  c.h(0);
  const qrc::passes::Optimize1qGatesDecomposition pass;
  EXPECT_TRUE(pass.run(c, {}));
  EXPECT_EQ(c.gate_count(), 0);
}

TEST(OptPassTest, ConsolidateReducesLongCxChain) {
  // Four CX on the same pair = identity-ish structure; at most 4 -> <= 3.
  Circuit c(2);
  c.cx(0, 1);
  c.rz(0.3, 1);
  c.cx(0, 1);
  c.cx(0, 1);
  c.rx(0.2, 0);
  c.cx(0, 1);
  c.cx(0, 1);
  const Circuit original = c;
  const qrc::passes::ConsolidateBlocks pass;
  EXPECT_TRUE(pass.run(c, {}));
  EXPECT_LT(c.two_qubit_gate_count(), 5);
  EXPECT_TRUE(qrc::ir::circuits_equivalent(original, c));
}

TEST(OptPassTest, PeepholeConsolidatesHeavyDressing) {
  // A single CX dressed with six 1q gates: same CX count but the 1q gates
  // fuse into at most four u3 locals.
  Circuit c(2);
  c.h(0);
  c.t(0);
  c.s(0);
  c.cx(0, 1);
  c.h(1);
  c.t(1);
  c.sx(1);
  const Circuit original = c;
  const qrc::passes::PeepholeOptimise2Q pass;
  EXPECT_TRUE(pass.run(c, {}));
  EXPECT_LE(c.two_qubit_gate_count(), 1);
  EXPECT_LT(c.gate_count(), original.gate_count());
  EXPECT_TRUE(qrc::ir::circuits_equivalent(original, c));
}

TEST(OptPassTest, PeepholeRecognisesIswapClassNeedsTwoCx) {
  // swap + cx is iSWAP-class (2 CX), so no 2-gate improvement exists and
  // the block must be left alone rather than inflated.
  Circuit c(2);
  c.swap(0, 1);
  c.cx(1, 0);
  const Circuit original = c;
  const qrc::passes::PeepholeOptimise2Q pass;
  (void)pass.run(c, {});
  EXPECT_LE(c.two_qubit_gate_count(), 2);
  EXPECT_TRUE(qrc::ir::circuits_equivalent(original, c));
}

TEST(OptPassTest, OptimizeCliffordsCompressesCliffordChunk) {
  Circuit c(3);
  for (int rep = 0; rep < 4; ++rep) {
    c.h(0);
    c.cx(0, 1);
    c.cx(1, 2);
    c.s(2);
    c.cx(0, 1);
    c.h(1);
  }
  const Circuit original = c;
  const qrc::passes::OptimizeCliffords pass;
  EXPECT_TRUE(pass.run(c, {}));
  EXPECT_LT(c.two_qubit_gate_count(), original.two_qubit_gate_count());
  EXPECT_TRUE(qrc::ir::circuits_equivalent(original, c));
}

TEST(OptPassTest, CliffordSimpGuardsConnectivityWhenMapped) {
  // A Clifford chunk on a line device: resynthesised replacement must stay
  // on coupled pairs or be rejected.
  const Device dev("test_line4", Platform::kIBM,
                   qrc::device::CouplingMap::line(4), 99);
  Circuit c(4);
  for (int rep = 0; rep < 3; ++rep) {
    c.cx(0, 1);
    c.cx(1, 2);
    c.cx(2, 3);
    c.s(0);
    c.h(2);
  }
  const Circuit original = c;
  PassContext ctx;
  ctx.device = &dev;
  ctx.is_mapped = true;
  const qrc::passes::CliffordSimp pass;
  (void)pass.run(c, ctx);
  EXPECT_TRUE(dev.circuit_respects_topology(c));
  EXPECT_TRUE(qrc::ir::circuits_equivalent(original, c));
}

TEST(OptPassTest, FullPeepholeShrinksMessyCircuit) {
  Circuit c = random_circuit(4, 60, 31415);
  const Circuit original = c;
  const int before = c.gate_count();
  const qrc::passes::FullPeepholeOptimise pass;
  (void)pass.run(c, {});
  EXPECT_LE(c.gate_count(), before);
  EXPECT_TRUE(qrc::ir::circuits_equivalent(original, c));
}

}  // namespace
