// Tests for the socket serve layer: the versioned wire envelope (v1 +
// bare v0 compat) and its codecs, the non-blocking TCP server — many
// concurrent clients, bitwise agreement with direct Predictor::compile(),
// malformed/oversized frame handling, typed "overloaded" load shedding at
// both the per-connection and per-lane bounds, partial-then-final
// streaming for deadline-bounded searches — and graceful drain semantics.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bench_suite/benchmarks.hpp"
#include "core/predictor.hpp"
#include "ir/qasm.hpp"
#include "net/server.hpp"
#include "net/socket.hpp"
#include "service/compile_service.hpp"
#include "service/errors.hpp"
#include "service/jsonl.hpp"

namespace {

using qrc::bench::BenchmarkFamily;
using qrc::core::Predictor;
using qrc::ir::Circuit;
using qrc::reward::RewardKind;
using qrc::service::CompileService;
using qrc::service::ErrorCode;
using qrc::service::JsonValue;
using qrc::service::ServeOp;
using qrc::service::ServiceConfig;
using qrc::service::ServiceError;

Circuit small_ghz() {
  Circuit c(3, "ghz3");
  c.h(0);
  c.cx(0, 1);
  c.cx(1, 2);
  c.measure_all();
  return c;
}

/// One tiny trained model shared across tests (training is the slow part;
/// every compile path on it is const and thread-safe).
const Predictor& shared_model() {
  static auto* model = [] {
    qrc::core::PredictorConfig config;
    config.reward = RewardKind::kFidelity;
    config.seed = 11;
    config.ppo.total_timesteps = 512;
    config.ppo.steps_per_update = 256;
    config.ppo.hidden_sizes = {16};
    auto* predictor = new Predictor(config);
    (void)predictor->train({small_ghz()});
    return predictor;
  }();
  return *model;
}

std::shared_ptr<const Predictor> shared_handle() {
  return {&shared_model(), [](const Predictor*) {}};
}

/// A compile service with the shared model plus a listening server on an
/// ephemeral port. Declaration order matters: the service must outlive
/// the server, so it is declared (and thus destroyed) after it.
struct TestServer {
  CompileService service;
  qrc::net::Server server;

  explicit TestServer(ServiceConfig service_config = {},
                      qrc::net::ServerConfig net_config = {})
      : service(std::move(service_config)),
        server(service, [&net_config] {
          net_config.host = "127.0.0.1";
          net_config.port = 0;
          return net_config;
        }()) {
    service.registry().add("fidelity", shared_handle());
    server.start();
  }

  [[nodiscard]] int port() const { return server.port(); }
};

/// A blocking line-oriented client connection.
struct Client {
  qrc::net::Socket sock;
  qrc::net::LineReader reader;

  explicit Client(int port)
      : sock(qrc::net::connect_tcp("127.0.0.1", port)),
        reader(sock.fd()) {}

  void send(const std::string& line) {
    qrc::net::send_all(sock.fd(), line + "\n");
  }
  std::optional<std::string> recv() { return reader.next_line(); }
};

/// What the server actually compiles: the circuit after its trip through
/// QASM text. Serialisation prints angles with finite precision, so the
/// direct-comparison baselines must compile this, not the original.
Circuit wire_roundtrip(const Circuit& circuit) {
  return qrc::ir::from_qasm(qrc::ir::to_qasm(circuit));
}

std::string compile_request(const std::string& id, const Circuit& circuit,
                            const std::string& extra = "") {
  return "{\"v\":1,\"op\":\"compile\",\"id\":" +
         qrc::service::json_quote(id) +
         ",\"qasm\":" + qrc::service::json_quote(qrc::ir::to_qasm(circuit)) +
         extra + "}";
}

const JsonValue::Object& as_object(const JsonValue& v) {
  return v.as_object();
}

std::string str_field(const JsonValue& v, const std::string& key) {
  const auto& obj = as_object(v);
  const auto it = obj.find(key);
  if (it == obj.end()) {
    ADD_FAILURE() << "missing field '" << key << "' in " << v.dump();
    return "";
  }
  return it->second.as_string();
}

bool has_field(const JsonValue& v, const std::string& key) {
  return as_object(v).count(key) > 0;
}

/// The "error"."code" of a v1 error frame.
std::string error_code(const JsonValue& v) {
  return str_field(as_object(v).at("error"), "code");
}

// --------------------------------------------------------- codecs only ---

TEST(ServeProtocolTest, V1CompileEnvelopeRoundTrips) {
  const auto request = qrc::service::parse_serve_request(
      "{\"v\":1,\"op\":\"compile\",\"id\":7,\"model\":\"m\","
      "\"qasm\":\"OPENQASM 2.0;\",\"verify\":true,"
      "\"search\":\"beam:6\",\"deadline_ms\":250}");
  EXPECT_EQ(request.version, 1);
  EXPECT_EQ(request.op, ServeOp::kCompile);
  EXPECT_EQ(request.id, "7");
  EXPECT_EQ(request.model, "m");
  EXPECT_TRUE(request.verify);
  ASSERT_TRUE(request.search.has_value());
  EXPECT_EQ(request.search->beam_width, 6);
  EXPECT_EQ(request.search->deadline_ms, 250);
}

TEST(ServeProtocolTest, V1ControlOpsParse) {
  const auto ping = qrc::service::parse_serve_request(
      "{\"v\":1,\"op\":\"ping\",\"id\":\"p\"}");
  EXPECT_EQ(ping.op, ServeOp::kPing);
  EXPECT_EQ(ping.id, "p");
  const auto stats = qrc::service::parse_serve_request(
      "{\"v\":1,\"op\":\"stats\",\"id\":\"s\"}");
  EXPECT_EQ(stats.op, ServeOp::kStats);

  // Compile payload fields are rejected on control ops.
  EXPECT_THROW(qrc::service::parse_serve_request(
                   "{\"v\":1,\"op\":\"ping\",\"qasm\":\"x\"}"),
               ServiceError);
  // Unknown ops are rejected.
  EXPECT_THROW(qrc::service::parse_serve_request(
                   "{\"v\":1,\"op\":\"reboot\"}"),
               ServiceError);
}

TEST(ServeProtocolTest, BareV0LineStillParses) {
  const auto request = qrc::service::parse_serve_request(
      "{\"id\":\"legacy\",\"qasm\":\"OPENQASM 2.0;\"}");
  EXPECT_EQ(request.version, 0);
  EXPECT_EQ(request.op, ServeOp::kCompile);
  EXPECT_EQ(request.id, "legacy");
}

TEST(ServeProtocolTest, UnsupportedVersionIsTyped) {
  try {
    (void)qrc::service::parse_serve_request("{\"v\":2,\"op\":\"ping\"}");
    FAIL() << "expected ServiceError";
  } catch (const ServiceError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kUnsupportedVersion);
  }
  EXPECT_EQ(qrc::service::extract_request_version("{\"v\":1,\"op\":\"x\"}"),
            1);
  EXPECT_EQ(qrc::service::extract_request_version("{\"id\":\"a\"}"), 0);
  EXPECT_EQ(qrc::service::extract_request_version("not json"), 0);
}

TEST(ServeProtocolTest, ResponseLinesAreVersionShaped) {
  qrc::service::ServiceResponse response;
  response.id = "r1";
  response.model = "m";
  const auto v0 = JsonValue::parse(
      qrc::service::serve_response_line(response, /*version=*/0));
  EXPECT_FALSE(has_field(v0, "type"));
  const auto v1 = JsonValue::parse(
      qrc::service::serve_response_line(response, /*version=*/1));
  EXPECT_EQ(str_field(v1, "type"), "result");

  const auto bare_error = JsonValue::parse(
      qrc::service::serve_error_line("e0", "boom"));
  EXPECT_TRUE(as_object(bare_error).at("error").is_string());
  const auto typed_error = JsonValue::parse(qrc::service::serve_error_line(
      "e1", ErrorCode::kOverloaded, "busy"));
  EXPECT_EQ(str_field(typed_error, "type"), "error");
  EXPECT_EQ(error_code(typed_error), "overloaded");
  EXPECT_EQ(str_field(as_object(typed_error).at("error"), "message"),
            "busy");

  qrc::search::SearchProgress progress;
  progress.quantum = 3;
  progress.nodes_expanded = 42;
  progress.found_terminal = true;
  progress.best_reward = 0.5;
  const auto partial = JsonValue::parse(
      qrc::service::serve_partial_line("s1", progress));
  EXPECT_EQ(str_field(partial, "type"), "partial");
  EXPECT_EQ(as_object(partial).at("quantum").as_number(), 3.0);
  EXPECT_EQ(as_object(partial).at("nodes").as_number(), 42.0);
  EXPECT_TRUE(as_object(partial).at("found_terminal").as_bool());
}

TEST(ServeProtocolTest, ErrorCodeNamesAreWireStable) {
  EXPECT_EQ(qrc::service::error_code_name(ErrorCode::kBadRequest),
            "bad_request");
  EXPECT_EQ(qrc::service::error_code_name(ErrorCode::kUnknownModel),
            "unknown_model");
  EXPECT_EQ(qrc::service::error_code_name(ErrorCode::kOverloaded),
            "overloaded");
  EXPECT_EQ(qrc::service::error_code_name(ErrorCode::kShuttingDown),
            "shutting_down");
  EXPECT_EQ(qrc::service::error_code_name(ErrorCode::kFrameTooLarge),
            "frame_too_large");
  EXPECT_EQ(qrc::service::error_code_name(ErrorCode::kUnsupportedVersion),
            "unsupported_version");
  EXPECT_EQ(qrc::service::error_code_name(ErrorCode::kInternal),
            "internal");
}

// --------------------------------------------------------- live server ---

TEST(NetServeTest, PingStatsAndUnknownModel) {
  TestServer ts;
  Client client(ts.port());

  client.send("{\"v\":1,\"op\":\"ping\",\"id\":\"p1\"}");
  auto line = client.recv();
  ASSERT_TRUE(line.has_value());
  auto frame = JsonValue::parse(*line);
  EXPECT_EQ(str_field(frame, "id"), "p1");
  EXPECT_EQ(str_field(frame, "type"), "result");
  EXPECT_EQ(str_field(frame, "op"), "ping");

  client.send("{\"v\":1,\"op\":\"stats\",\"id\":\"s1\"}");
  line = client.recv();
  ASSERT_TRUE(line.has_value());
  frame = JsonValue::parse(*line);
  EXPECT_EQ(str_field(frame, "op"), "stats");
  EXPECT_TRUE(has_field(frame, "requests"));
  EXPECT_TRUE(has_field(frame, "shed"));
  EXPECT_TRUE(has_field(frame, "partials"));

  client.send(compile_request("u1", small_ghz(),
                              ",\"model\":\"no_such_model\""));
  line = client.recv();
  ASSERT_TRUE(line.has_value());
  frame = JsonValue::parse(*line);
  EXPECT_EQ(str_field(frame, "type"), "error");
  EXPECT_EQ(error_code(frame), "unknown_model");
}

TEST(NetServeTest, CompileMatchesDirectPredictorBitwise) {
  TestServer ts;
  Client client(ts.port());
  const Circuit circuit = small_ghz();
  const std::string direct = qrc::ir::to_qasm(
      shared_model().compile(wire_roundtrip(circuit)).circuit);

  client.send(compile_request("c1", circuit));
  const auto line = client.recv();
  ASSERT_TRUE(line.has_value());
  const auto frame = JsonValue::parse(*line);
  ASSERT_EQ(str_field(frame, "type"), "result") << *line;
  EXPECT_EQ(str_field(frame, "id"), "c1");
  EXPECT_EQ(str_field(frame, "qasm"), direct);
}

TEST(NetServeTest, SearchCompileMatchesDirectSearchBitwise) {
  TestServer ts;
  Client client(ts.port());
  const Circuit circuit =
      qrc::bench::make_benchmark(BenchmarkFamily::kVqe, 4, 1);
  qrc::search::SearchOptions options;
  options.strategy = qrc::search::Strategy::kBeam;
  options.beam_width = 2;
  const std::string direct = qrc::ir::to_qasm(
      shared_model()
          .compile_search(wire_roundtrip(circuit), options)
          .circuit);

  client.send(compile_request("b1", circuit, ",\"search\":\"beam:2\""));
  // Partials may or may not stream (no deadline); the final result frame
  // is the last one for this id.
  for (;;) {
    const auto line = client.recv();
    ASSERT_TRUE(line.has_value());
    const auto frame = JsonValue::parse(*line);
    if (str_field(frame, "type") == "partial") {
      continue;
    }
    ASSERT_EQ(str_field(frame, "type"), "result") << *line;
    EXPECT_EQ(str_field(frame, "qasm"), direct);
    break;
  }
}

TEST(NetServeTest, ConcurrentClientsMatchDirectCompiles) {
  TestServer ts;
  std::vector<Circuit> circuits;
  for (const int n : {2, 3, 4}) {
    circuits.push_back(
        qrc::bench::make_benchmark(BenchmarkFamily::kGhz, n, 1));
    circuits.push_back(
        qrc::bench::make_benchmark(BenchmarkFamily::kVqe, n, 1));
  }
  std::vector<std::string> direct;
  direct.reserve(circuits.size());
  for (const Circuit& c : circuits) {
    direct.push_back(
        qrc::ir::to_qasm(shared_model().compile(wire_roundtrip(c)).circuit));
  }

  constexpr int kClients = 8;
  std::vector<int> failures(kClients, 0);
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&, t] {
      Client client(ts.port());
      // Pipeline every request first, then read all responses.
      for (std::size_t i = 0; i < circuits.size(); ++i) {
        client.send(compile_request(
            "t" + std::to_string(t) + "-" + std::to_string(i),
            circuits[i]));
      }
      std::map<std::string, std::string> got;
      while (got.size() < circuits.size()) {
        const auto line = client.recv();
        if (!line.has_value()) {
          ++failures[t];
          return;
        }
        const auto frame = JsonValue::parse(*line);
        if (str_field(frame, "type") != "result") {
          ++failures[t];
          return;
        }
        got[str_field(frame, "id")] = str_field(frame, "qasm");
      }
      for (std::size_t i = 0; i < circuits.size(); ++i) {
        const auto it =
            got.find("t" + std::to_string(t) + "-" + std::to_string(i));
        if (it == got.end() || it->second != direct[i]) {
          ++failures[t];
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(std::count(failures.begin(), failures.end(), 0), kClients);
}

TEST(NetServeTest, MalformedLinesGetTypedErrorsAndConnectionSurvives) {
  TestServer ts;
  Client client(ts.port());

  // Unparseable JSON: no version to sniff, so the v0 error shape.
  client.send("this is not json");
  auto line = client.recv();
  ASSERT_TRUE(line.has_value());
  auto frame = JsonValue::parse(*line);
  EXPECT_TRUE(as_object(frame).at("error").is_string());

  // Well-formed v1 envelope missing its payload: typed bad_request.
  client.send("{\"v\":1,\"op\":\"compile\",\"id\":\"m1\"}");
  line = client.recv();
  ASSERT_TRUE(line.has_value());
  frame = JsonValue::parse(*line);
  EXPECT_EQ(str_field(frame, "id"), "m1");
  EXPECT_EQ(error_code(frame), "bad_request");

  // Payload that fails QASM parsing: also bad_request.
  client.send("{\"v\":1,\"op\":\"compile\",\"id\":\"m2\","
              "\"qasm\":\"bogus\"}");
  line = client.recv();
  ASSERT_TRUE(line.has_value());
  frame = JsonValue::parse(*line);
  EXPECT_EQ(error_code(frame), "bad_request");

  // The connection survived all three refusals.
  client.send("{\"v\":1,\"op\":\"ping\",\"id\":\"alive\"}");
  line = client.recv();
  ASSERT_TRUE(line.has_value());
  EXPECT_EQ(str_field(JsonValue::parse(*line), "id"), "alive");
}

TEST(NetServeTest, OversizedFrameIsRejectedWithoutKillingConnection) {
  qrc::net::ServerConfig net_config;
  net_config.max_frame_bytes = 2048;
  TestServer ts({}, net_config);
  Client client(ts.port());

  std::string huge = "{\"v\":1,\"op\":\"compile\",\"id\":\"big\",\"qasm\":\"";
  huge.append(16384, 'x');
  huge += "\"}";
  client.send(huge);
  auto line = client.recv();
  ASSERT_TRUE(line.has_value());
  EXPECT_EQ(error_code(JsonValue::parse(*line)), "frame_too_large");

  client.send("{\"v\":1,\"op\":\"ping\",\"id\":\"after\"}");
  line = client.recv();
  ASSERT_TRUE(line.has_value());
  EXPECT_EQ(str_field(JsonValue::parse(*line), "id"), "after");
}

TEST(NetServeTest, V0BareRequestKeepsLegacyResponseShape) {
  TestServer ts;
  Client client(ts.port());
  const Circuit circuit = small_ghz();
  client.send("{\"id\":\"old\",\"qasm\":" +
              qrc::service::json_quote(qrc::ir::to_qasm(circuit)) + "}");
  const auto line = client.recv();
  ASSERT_TRUE(line.has_value());
  const auto frame = JsonValue::parse(*line);
  EXPECT_FALSE(has_field(frame, "type"));  // pre-envelope shape
  EXPECT_EQ(str_field(frame, "id"), "old");
  EXPECT_EQ(str_field(frame, "qasm"),
            qrc::ir::to_qasm(
                shared_model().compile(wire_roundtrip(circuit)).circuit));
}

TEST(NetServeTest, ConnectionInflightCapShedsWithTypedOverloaded) {
  qrc::net::ServerConfig net_config;
  net_config.max_inflight_per_conn = 2;
  TestServer ts({}, net_config);
  Client client(ts.port());

  // One batched send of 8 slow (deadline-bounded search) requests: the
  // server admits at most 2 before answering, so most are shed. Every
  // request must still get exactly one final frame — shedding never
  // drops a request on the floor.
  constexpr int kRequests = 8;
  std::string burst;
  for (int i = 0; i < kRequests; ++i) {
    const Circuit circuit =
        qrc::bench::make_benchmark(BenchmarkFamily::kVqe, 2 + (i % 3), 1);
    burst += compile_request(
                 "q" + std::to_string(i), circuit,
                 ",\"search\":\"beam:4\",\"deadline_ms\":200") +
             "\n";
  }
  qrc::net::send_all(client.sock.fd(), burst);

  int finals = 0;
  int overloaded = 0;
  while (finals < kRequests) {
    const auto line = client.recv();
    ASSERT_TRUE(line.has_value()) << "connection closed early";
    const auto frame = JsonValue::parse(*line);
    const std::string type = str_field(frame, "type");
    if (type == "partial") {
      continue;
    }
    ++finals;
    if (type == "error") {
      EXPECT_EQ(error_code(frame), "overloaded") << *line;
      ++overloaded;
    }
  }
  EXPECT_EQ(finals, kRequests);
  EXPECT_GE(overloaded, 1);
  EXPECT_GE(ts.server.stats().shed_inflight, 1u);
}

TEST(NetServeTest, LaneQueueBoundShedsWithTypedOverloaded) {
  ServiceConfig service_config;
  service_config.max_batch = 1;  // drain one request at a time
  service_config.max_lane_queue = 1;
  TestServer ts(service_config, {});
  Client client(ts.port());

  constexpr int kRequests = 6;
  std::string burst;
  for (int i = 0; i < kRequests; ++i) {
    const Circuit circuit =
        qrc::bench::make_benchmark(BenchmarkFamily::kGhz, 2 + (i % 3), 1);
    burst += compile_request(
                 "q" + std::to_string(i), circuit,
                 ",\"search\":\"beam:4\",\"deadline_ms\":150") +
             "\n";
  }
  qrc::net::send_all(client.sock.fd(), burst);

  int finals = 0;
  int overloaded = 0;
  while (finals < kRequests) {
    const auto line = client.recv();
    ASSERT_TRUE(line.has_value()) << "connection closed early";
    const auto frame = JsonValue::parse(*line);
    const std::string type = str_field(frame, "type");
    if (type == "partial") {
      continue;
    }
    ++finals;
    if (type == "error") {
      EXPECT_EQ(error_code(frame), "overloaded") << *line;
      ++overloaded;
    }
  }
  EXPECT_EQ(finals, kRequests);
  EXPECT_GE(overloaded, 1);
  EXPECT_GE(ts.service.stats().shed, 1u);
}

TEST(NetServeTest, DeadlineBoundedSearchStreamsPartialsBeforeFinal) {
  TestServer ts;
  Client client(ts.port());
  const Circuit circuit =
      qrc::bench::make_benchmark(BenchmarkFamily::kVqe, 4, 1);
  client.send(compile_request("s1", circuit,
                              ",\"search\":\"beam:4\",\"deadline_ms\":400"));

  int partials = 0;
  bool saw_final = false;
  while (!saw_final) {
    const auto line = client.recv();
    ASSERT_TRUE(line.has_value());
    const auto frame = JsonValue::parse(*line);
    EXPECT_EQ(str_field(frame, "id"), "s1");
    const std::string type = str_field(frame, "type");
    if (type == "partial") {
      EXPECT_FALSE(saw_final) << "partial after final";
      ++partials;
      EXPECT_TRUE(has_field(frame, "quantum"));
      EXPECT_TRUE(has_field(frame, "best_reward"));
    } else {
      ASSERT_EQ(type, "result") << *line;
      saw_final = true;
    }
  }
  // The greedy-baseline snapshot guarantees at least one partial for
  // every streamed search, even when the deadline lands instantly.
  EXPECT_GE(partials, 1);
  EXPECT_GE(ts.server.stats().partial_frames, 1u);
}

TEST(NetServeTest, GracefulDrainAnswersInflightThenCloses) {
  TestServer ts;
  const int port = ts.port();
  Client client(port);
  const Circuit circuit =
      qrc::bench::make_benchmark(BenchmarkFamily::kVqe, 4, 1);
  client.send(compile_request("d1", circuit,
                              ",\"search\":\"beam:4\",\"deadline_ms\":300"));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ts.server.request_drain();

  // The in-flight request still completes and flushes...
  bool saw_final = false;
  for (;;) {
    const auto line = client.recv();
    if (!line.has_value()) {
      break;  // ...after which the server hangs up.
    }
    const auto frame = JsonValue::parse(*line);
    const std::string type = str_field(frame, "type");
    if (type != "partial") {
      EXPECT_EQ(type, "result") << *line;
      EXPECT_EQ(str_field(frame, "id"), "d1");
      saw_final = true;
    }
  }
  EXPECT_TRUE(saw_final);

  ts.server.join();
  // The listener is gone: new connections are refused.
  EXPECT_THROW((void)qrc::net::connect_tcp("127.0.0.1", port),
               std::runtime_error);
}

}  // namespace
