// Tests for the compilation MDP: state machine transitions, action
// masking, environment episodes, the end-to-end predictor and the baseline
// pipelines. Integration-grade: these drive every module in the library.

#include <gtest/gtest.h>

#include <sstream>

#include "baselines/baselines.hpp"
#include "bench_suite/benchmarks.hpp"
#include "core/actions.hpp"
#include "core/compilation_env.hpp"
#include "core/predictor.hpp"
#include "device/library.hpp"
#include "ir/sim.hpp"

namespace {

using qrc::bench::BenchmarkFamily;
using qrc::core::ActionRegistry;
using qrc::core::CompilationEnv;
using qrc::core::CompilationEnvConfig;
using qrc::core::CompilationState;
using qrc::core::MdpState;
using qrc::device::DeviceId;
using qrc::ir::Circuit;
using qrc::reward::RewardKind;

Circuit small_ghz() {
  Circuit c(3, "ghz3");
  c.h(0);
  c.cx(0, 1);
  c.cx(1, 2);
  c.measure_all();
  return c;
}

void apply_by_name(CompilationState& state, std::string_view name,
                   std::uint64_t seed = 1) {
  const auto& registry = ActionRegistry::instance();
  const int id = registry.index_of(name);
  ASSERT_TRUE(registry.at(id).valid(state)) << name;
  registry.at(id).apply(state, seed);
}

// --------------------------------------------------------- state machine --

TEST(MdpStateTest, RegistryHas29Actions) {
  EXPECT_EQ(ActionRegistry::instance().size(), 29);
}

TEST(MdpStateTest, WalkThroughAllStates) {
  CompilationState state;
  state.circuit = small_ghz();
  EXPECT_EQ(state.state(), MdpState::kStart);

  apply_by_name(state, "platform_ibm");
  EXPECT_EQ(state.state(), MdpState::kPlatformChosen);

  apply_by_name(state, "device_ibmq_montreal");
  EXPECT_EQ(state.state(), MdpState::kDeviceChosen);

  apply_by_name(state, "BasisTranslator");
  EXPECT_EQ(state.state(), MdpState::kOnlyNativeGates);
  EXPECT_TRUE(state.is_native());
  EXPECT_FALSE(state.is_mapped());

  apply_by_name(state, "TrivialLayout");
  // GHZ chain on montreal: qubits 0-1 coupled, 1-2 uncoupled -> not done.
  EXPECT_TRUE(state.layout_applied);

  if (state.state() != MdpState::kDone) {
    apply_by_name(state, "SabreSwap");
    // Inserted SWAPs are non-native again.
    apply_by_name(state, "BasisTranslator");
  }
  EXPECT_EQ(state.state(), MdpState::kDone);
  EXPECT_TRUE(state.device->circuit_is_native(state.circuit));
  EXPECT_TRUE(state.device->circuit_respects_topology(state.circuit));
}

TEST(MdpStateTest, MasksFollowFigureTwo) {
  const auto& registry = ActionRegistry::instance();
  CompilationState state;
  state.circuit = small_ghz();

  // Start: platforms + optimizations only.
  auto mask = registry.mask(state);
  for (int i = 0; i < registry.size(); ++i) {
    const auto type = registry.at(i).type();
    const bool expected = type == qrc::core::ActionType::kPlatformSelection ||
                          type == qrc::core::ActionType::kOptimization;
    EXPECT_EQ(mask[static_cast<std::size_t>(i)], expected)
        << registry.at(i).name();
  }

  // PlatformChosen(IBM): IBM devices + optimizations.
  apply_by_name(state, "platform_ibm");
  mask = registry.mask(state);
  EXPECT_TRUE(mask[static_cast<std::size_t>(
      registry.index_of("device_ibmq_montreal"))]);
  EXPECT_TRUE(mask[static_cast<std::size_t>(
      registry.index_of("device_ibmq_washington"))]);
  EXPECT_FALSE(
      mask[static_cast<std::size_t>(registry.index_of("device_oqc_lucy"))]);
  EXPECT_FALSE(
      mask[static_cast<std::size_t>(registry.index_of("platform_ibm"))]);
  EXPECT_FALSE(
      mask[static_cast<std::size_t>(registry.index_of("TrivialLayout"))]);

  // DeviceChosen: synthesis + layout + optimizations; no routing yet.
  apply_by_name(state, "device_ibmq_montreal");
  mask = registry.mask(state);
  EXPECT_TRUE(
      mask[static_cast<std::size_t>(registry.index_of("BasisTranslator"))]);
  EXPECT_TRUE(
      mask[static_cast<std::size_t>(registry.index_of("SabreLayout"))]);
  EXPECT_FALSE(
      mask[static_cast<std::size_t>(registry.index_of("SabreSwap"))]);

  // After layout: routing valid (if unmapped), layout invalid.
  apply_by_name(state, "BasisTranslator");
  apply_by_name(state, "TrivialLayout");
  mask = registry.mask(state);
  EXPECT_FALSE(
      mask[static_cast<std::size_t>(registry.index_of("TrivialLayout"))]);
  if (state.state() != MdpState::kDone) {
    EXPECT_TRUE(
        mask[static_cast<std::size_t>(registry.index_of("BasicSwap"))]);
  }
}

TEST(MdpStateTest, DeviceTooSmallIsMasked) {
  CompilationState state;
  state.circuit = qrc::bench::make_benchmark(BenchmarkFamily::kGhz, 15, 1);
  apply_by_name(state, "platform_oqc");
  const auto& registry = ActionRegistry::instance();
  // Lucy has 8 qubits < 15.
  EXPECT_FALSE(registry.at(registry.index_of("device_oqc_lucy"))
                   .valid(state));
}

TEST(MdpStateTest, RoutingMaskedForThreeQubitGates) {
  CompilationState state;
  state.circuit = Circuit(3);
  state.circuit.ccx(0, 1, 2);
  apply_by_name(state, "platform_ibm");
  apply_by_name(state, "device_ibmq_montreal");
  apply_by_name(state, "TrivialLayout");
  const auto& registry = ActionRegistry::instance();
  EXPECT_FALSE(
      registry.at(registry.index_of("SabreSwap")).valid(state));
  // Synthesis lowers the Toffoli, after which routing unlocks.
  apply_by_name(state, "BasisTranslator");
  EXPECT_TRUE(state.circuit.max_gate_arity_at_most(2));
}

TEST(MdpStateTest, OptimizationsKeepCircuitExecutableAfterMapping) {
  // Run every optimization action on a mapped circuit; connectivity and
  // semantics must be preserved.
  const auto& registry = ActionRegistry::instance();
  CompilationState state;
  state.circuit = qrc::bench::make_benchmark(BenchmarkFamily::kQaoa, 4, 2);
  apply_by_name(state, "platform_ibm");
  apply_by_name(state, "device_ibmq_montreal");
  apply_by_name(state, "BasisTranslator");
  apply_by_name(state, "SabreLayout");
  if (!state.is_mapped()) {
    apply_by_name(state, "SabreSwap");
    apply_by_name(state, "BasisTranslator");
  }
  ASSERT_EQ(state.state(), MdpState::kDone);
  // Done is terminal: no action is valid any more. To exercise the
  // optimizations on mapped circuits we evaluate pass validity just before
  // completion instead.
  const auto mask = registry.mask(state);
  for (int i = 0; i < registry.size(); ++i) {
    EXPECT_FALSE(mask[static_cast<std::size_t>(i)])
        << registry.at(i).name() << " valid in Done";
  }
}

// ---------------------------------------------------------------- env -----

TEST(CompilationEnvTest, ObservationShapeAndRange) {
  CompilationEnv env({small_ghz()}, CompilationEnvConfig{});
  const auto obs = env.reset();
  ASSERT_EQ(obs.size(), 7U);
  for (const double v : obs) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
  EXPECT_EQ(env.num_actions(), 29);
}

TEST(CompilationEnvTest, ScriptedEpisodeReachesDoneWithReward) {
  CompilationEnvConfig config;
  config.reward = RewardKind::kFidelity;
  CompilationEnv env({small_ghz()}, config);
  (void)env.reset();
  const auto& registry = ActionRegistry::instance();
  const std::vector<std::string> script = {
      "platform_ibm", "device_ibmq_montreal", "BasisTranslator",
      "SabreLayout"};
  double reward = 0.0;
  bool done = false;
  for (const auto& name : script) {
    const auto result = env.step(registry.index_of(name));
    reward = result.reward;
    done = result.done;
    if (done) {
      break;
    }
  }
  while (!done) {
    // Finish with routing + synthesis as needed.
    const auto mask = env.action_mask();
    const int sabre = registry.index_of("SabreSwap");
    const int translate = registry.index_of("BasisTranslator");
    const int action = mask[static_cast<std::size_t>(sabre)] ? sabre
                                                             : translate;
    const auto result = env.step(action);
    reward = result.reward;
    done = result.done;
  }
  EXPECT_TRUE(done);
  EXPECT_GT(reward, 0.5);  // small circuit: decent fidelity
  EXPECT_LE(reward, 1.0);
}

TEST(CompilationEnvTest, InvalidActionThrows) {
  CompilationEnv env({small_ghz()}, CompilationEnvConfig{});
  (void)env.reset();
  const auto& registry = ActionRegistry::instance();
  EXPECT_THROW((void)env.step(registry.index_of("SabreSwap")),
               std::logic_error);
}

TEST(CompilationEnvTest, TruncationAfterMaxSteps) {
  CompilationEnvConfig config;
  config.max_steps = 3;
  CompilationEnv env({small_ghz()}, config);
  (void)env.reset();
  const auto& registry = ActionRegistry::instance();
  // Waste steps on optimizations that change nothing.
  const int noop = registry.index_of("CXCancellation");
  qrc::rl::StepResult result;
  for (int i = 0; i < 3; ++i) {
    result = env.step(noop);
  }
  EXPECT_TRUE(result.truncated);
  EXPECT_EQ(result.reward, 0.0);
}

TEST(CompilationEnvTest, MaskAlwaysHasValidAction) {
  // Random-walk episodes: at every step at least one action is valid.
  CompilationEnvConfig config;
  config.seed = 5;
  auto circuits = qrc::bench::benchmark_suite(2, 6, 10);
  CompilationEnv env(std::move(circuits), config);
  std::mt19937_64 rng(3);
  for (int episode = 0; episode < 4; ++episode) {
    (void)env.reset();
    for (int step = 0; step < 25; ++step) {
      const auto mask = env.action_mask();
      std::vector<int> valid;
      for (int i = 0; i < static_cast<int>(mask.size()); ++i) {
        if (mask[static_cast<std::size_t>(i)]) {
          valid.push_back(i);
        }
      }
      ASSERT_FALSE(valid.empty()) << "episode " << episode << " step "
                                  << step;
      const int action = valid[std::uniform_int_distribution<std::size_t>(
          0, valid.size() - 1)(rng)];
      const auto result = env.step(action);
      if (result.done || result.truncated) {
        break;
      }
    }
  }
}

// ------------------------------------------------------------ predictor ---

TEST(PredictorTest, TrainCompileRoundTrip) {
  qrc::core::PredictorConfig config;
  config.reward = RewardKind::kFidelity;
  config.seed = 11;
  config.ppo.total_timesteps = 768;
  config.ppo.steps_per_update = 256;
  config.ppo.epochs_per_update = 4;
  config.ppo.hidden_sizes = {32};
  qrc::core::Predictor predictor(config);

  std::vector<Circuit> circuits;
  for (const int n : {3, 4}) {
    circuits.push_back(
        qrc::bench::make_benchmark(BenchmarkFamily::kGhz, n, 1));
    circuits.push_back(
        qrc::bench::make_benchmark(BenchmarkFamily::kVqe, n, 1));
  }
  const auto stats = predictor.train(circuits);
  EXPECT_FALSE(stats.empty());
  ASSERT_TRUE(predictor.is_trained());

  const auto result = predictor.compile(
      qrc::bench::make_benchmark(BenchmarkFamily::kGhz, 4, 2));
  ASSERT_NE(result.device, nullptr);
  EXPECT_TRUE(result.device->circuit_is_native(result.circuit));
  EXPECT_TRUE(result.device->circuit_respects_topology(result.circuit));
  EXPECT_GE(result.reward, 0.0);
  EXPECT_LE(result.reward, 1.0);
  EXPECT_FALSE(result.action_trace.empty());
}

TEST(PredictorTest, SaveLoadProducesSameCompilation) {
  // End-to-end save -> load equivalence: the reloaded model must produce
  // identical compilations (action traces, rewards, circuits, layouts)
  // across a corpus spanning several families and widths, through both
  // the scalar and the batched compile paths.
  qrc::core::PredictorConfig config;
  config.reward = RewardKind::kCriticalDepth;
  config.seed = 13;
  config.ppo.total_timesteps = 512;
  config.ppo.steps_per_update = 256;
  config.ppo.hidden_sizes = {16};
  qrc::core::Predictor predictor(config);
  (void)predictor.train({small_ghz()});

  std::stringstream ss;
  predictor.save(ss);
  const auto loaded = qrc::core::Predictor::load(ss);
  EXPECT_EQ(loaded.config().reward, config.reward);
  EXPECT_EQ(loaded.config().seed, config.seed);

  std::vector<Circuit> corpus;
  for (const int n : {2, 3, 4}) {
    corpus.push_back(
        qrc::bench::make_benchmark(BenchmarkFamily::kWstate, n, 1));
    corpus.push_back(
        qrc::bench::make_benchmark(BenchmarkFamily::kGhz, n, 1));
    corpus.push_back(
        qrc::bench::make_benchmark(BenchmarkFamily::kQft, n, 1));
  }
  const auto batched_original = predictor.compile_all(corpus);
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    const auto a = predictor.compile(corpus[i]);
    const auto b = loaded.compile(corpus[i]);
    EXPECT_EQ(a.action_trace, b.action_trace) << corpus[i].name();
    EXPECT_EQ(a.reward, b.reward) << corpus[i].name();
    EXPECT_EQ(a.used_fallback, b.used_fallback) << corpus[i].name();
    EXPECT_EQ(a.device, b.device) << corpus[i].name();
    EXPECT_TRUE(a.circuit == b.circuit) << corpus[i].name();
    EXPECT_EQ(a.initial_layout, b.initial_layout) << corpus[i].name();
    EXPECT_EQ(a.final_layout, b.final_layout) << corpus[i].name();
    // The batched loop agrees with the scalar one on both models.
    EXPECT_EQ(batched_original[i].action_trace, a.action_trace);
    EXPECT_TRUE(batched_original[i].circuit == b.circuit);
  }
}

TEST(PredictorTest, CompileBeforeTrainThrows) {
  qrc::core::Predictor predictor({});
  EXPECT_THROW((void)predictor.compile(small_ghz()), std::logic_error);
  EXPECT_THROW((void)predictor.compile_all({}), std::logic_error);
}

TEST(PredictorTest, CompileAllMatchesIndividualCompiles) {
  // The batched greedy loop (one policy forward over all still-running
  // episodes per step) must reproduce compile() exactly per circuit.
  qrc::core::PredictorConfig config;
  config.seed = 11;
  config.ppo.total_timesteps = 512;
  config.ppo.steps_per_update = 256;
  config.ppo.hidden_sizes = {16};
  config.rollout_workers = 2;
  qrc::core::Predictor predictor(config);
  (void)predictor.train({small_ghz()});

  std::vector<Circuit> suite;
  for (const int n : {2, 3, 4}) {
    suite.push_back(qrc::bench::make_benchmark(BenchmarkFamily::kGhz, n, 1));
    suite.push_back(qrc::bench::make_benchmark(BenchmarkFamily::kVqe, n, 1));
  }
  const auto batched = predictor.compile_all(suite);
  ASSERT_EQ(batched.size(), suite.size());
  for (std::size_t i = 0; i < suite.size(); ++i) {
    const auto single = predictor.compile(suite[i]);
    EXPECT_EQ(batched[i].action_trace, single.action_trace)
        << suite[i].name();
    EXPECT_EQ(batched[i].reward, single.reward);
    EXPECT_EQ(batched[i].used_fallback, single.used_fallback);
    EXPECT_EQ(batched[i].circuit.size(), single.circuit.size());
    EXPECT_EQ(batched[i].device, single.device);
    EXPECT_EQ(batched[i].final_layout, single.final_layout);
    ASSERT_NE(batched[i].device, nullptr);
    EXPECT_TRUE(batched[i].device->circuit_is_native(batched[i].circuit));
  }
}

TEST(PredictorTest, ExtensionObjectivesTrainAndCompile) {
  // The gate-count and depth objectives (Section III-B's "further target
  // metrics") flow through the same training/compilation path.
  for (const auto kind : {RewardKind::kGateCount, RewardKind::kDepth}) {
    qrc::core::PredictorConfig config;
    config.reward = kind;
    config.seed = 19;
    config.ppo.total_timesteps = 512;
    config.ppo.steps_per_update = 256;
    config.ppo.hidden_sizes = {16};
    qrc::core::Predictor predictor(config);
    (void)predictor.train({small_ghz()});
    const auto result = predictor.compile(small_ghz());
    ASSERT_NE(result.device, nullptr);
    EXPECT_TRUE(result.device->circuit_is_native(result.circuit));
    EXPECT_TRUE(result.device->circuit_respects_topology(result.circuit));
    EXPECT_GT(result.reward, 0.0);
    EXPECT_LE(result.reward, 1.0);
  }
}

TEST(PredictorTest, FeatureMaskedCompileStillExecutable) {
  qrc::core::PredictorConfig config;
  config.reward = RewardKind::kFidelity;
  config.seed = 23;
  config.ppo.total_timesteps = 512;
  config.ppo.steps_per_update = 256;
  config.ppo.hidden_sizes = {16};
  qrc::core::Predictor predictor(config);
  (void)predictor.train({small_ghz()});
  for (int feature = 0; feature < 7; ++feature) {
    const auto result =
        predictor.compile_with_masked_feature(small_ghz(), feature);
    EXPECT_TRUE(result.device->circuit_respects_topology(result.circuit))
        << "feature " << feature;
  }
}

// ------------------------------------------------------------ baselines ---

TEST(BaselineTest, QiskitO3LikeProducesExecutableCircuits) {
  const auto& washington =
      qrc::device::get_device(DeviceId::kIbmqWashington);
  for (const auto family :
       {BenchmarkFamily::kGhz, BenchmarkFamily::kQft, BenchmarkFamily::kVqe,
        BenchmarkFamily::kQaoa}) {
    const Circuit c = qrc::bench::make_benchmark(family, 6, 3);
    const auto result =
        qrc::baselines::compile_qiskit_o3_like(c, washington, 1);
    EXPECT_TRUE(washington.circuit_is_native(result.circuit))
        << qrc::bench::family_name(family);
    EXPECT_TRUE(washington.circuit_respects_topology(result.circuit))
        << qrc::bench::family_name(family);
  }
}

TEST(BaselineTest, TketO2LikeProducesExecutableCircuits) {
  const auto& washington =
      qrc::device::get_device(DeviceId::kIbmqWashington);
  for (const auto family :
       {BenchmarkFamily::kGhz, BenchmarkFamily::kQft,
        BenchmarkFamily::kGraphState, BenchmarkFamily::kWstate}) {
    const Circuit c = qrc::bench::make_benchmark(family, 6, 3);
    const auto result = qrc::baselines::compile_tket_o2_like(c, washington, 1);
    EXPECT_TRUE(washington.circuit_is_native(result.circuit))
        << qrc::bench::family_name(family);
    EXPECT_TRUE(washington.circuit_respects_topology(result.circuit))
        << qrc::bench::family_name(family);
  }
}

TEST(BaselineTest, BaselinesPreserveSemanticsOnSmallDevice) {
  // Full statevector verification on a 6-qubit line device.
  const qrc::device::Device line6("test_line6", qrc::device::Platform::kIBM,
                                  qrc::device::CouplingMap::line(6), 7);
  // No measures: unitary comparison must hold exactly (up to phase).
  Circuit c(5, "probe");
  c.h(0);
  c.cx(0, 2);
  c.rz(0.4, 2);
  c.cx(2, 4);
  c.ccx(0, 1, 3);
  c.swap(1, 4);
  c.t(3);

  for (const bool qiskit : {true, false}) {
    const auto result =
        qiskit ? qrc::baselines::compile_qiskit_o3_like(c, line6, 3)
               : qrc::baselines::compile_tket_o2_like(c, line6, 3);
    EXPECT_TRUE(qrc::ir::mapped_circuit_equivalent(
        c, result.circuit, result.initial_layout, result.final_layout, 3))
        << (qiskit ? "qiskit_o3" : "tket_o2");
  }
}

TEST(BaselineTest, OptimizationReducesGateCount) {
  // The baselines should not blow the circuit up relative to naive
  // translate+route; check against an unoptimized pipeline.
  const auto& montreal = qrc::device::get_device(DeviceId::kIbmqMontreal);
  const Circuit c =
      qrc::bench::make_benchmark(BenchmarkFamily::kQftEntangled, 6, 5);
  const auto o3 = qrc::baselines::compile_qiskit_o3_like(c, montreal, 1);

  // Naive: translate, trivial layout, basic routing, translate.
  qrc::core::CompilationState state;
  state.circuit = c;
  apply_by_name(state, "platform_ibm");
  apply_by_name(state, "device_ibmq_montreal");
  apply_by_name(state, "BasisTranslator");
  apply_by_name(state, "TrivialLayout");
  if (!state.is_mapped()) {
    apply_by_name(state, "BasicSwap");
    apply_by_name(state, "BasisTranslator");
  }
  EXPECT_LE(o3.circuit.two_qubit_gate_count(),
            state.circuit.two_qubit_gate_count());
}

}  // namespace
