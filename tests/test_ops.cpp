// Tests for the operational observability layer: the structured logger
// (levels, ring sink, rate limiting, JSON lines), the flight recorder
// (seqlock wraparound, JSON dump, the SIGQUIT handler), the ops HTTP
// endpoints on the metrics listener (/healthz /readyz /statusz /debugz,
// HEAD/405/400 handling, the scrape counter), the v1 "debug_dump" wire
// op, and training telemetry (qrc_train_* metric families, the JSONL
// curve logger, and the guarantee that telemetry is observation-only —
// instrumented training produces a bitwise-identical model).

#include <gtest/gtest.h>
#include <csignal>
#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cmath>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/predictor.hpp"
#include "ir/qasm.hpp"
#include "net/server.hpp"
#include "net/socket.hpp"
#include "obs/build_info.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/training_logger.hpp"
#include "service/compile_service.hpp"
#include "service/jsonl.hpp"

namespace {

using qrc::core::Predictor;
using qrc::ir::Circuit;
using qrc::obs::FlightEventKind;
using qrc::obs::FlightRecorder;
using qrc::obs::Logger;
using qrc::obs::LogLevel;
using qrc::obs::MetricsRegistry;
using qrc::service::CompileService;
using qrc::service::JsonValue;
using qrc::service::ServiceConfig;

Circuit small_ghz() {
  Circuit c(3, "ghz3");
  c.h(0);
  c.cx(0, 1);
  c.cx(1, 2);
  c.measure_all();
  return c;
}

/// One tiny trained model shared across the server tests.
const Predictor& shared_model() {
  static auto* model = [] {
    qrc::core::PredictorConfig config;
    config.reward = qrc::reward::RewardKind::kFidelity;
    config.seed = 17;
    config.ppo.total_timesteps = 512;
    config.ppo.steps_per_update = 256;
    config.ppo.hidden_sizes = {16};
    auto* predictor = new Predictor(config);
    (void)predictor->train({small_ghz()});
    return predictor;
  }();
  return *model;
}

std::shared_ptr<const Predictor> shared_handle() {
  return {&shared_model(), [](const Predictor*) {}};
}

/// A live server with the metrics side listener on an ephemeral port.
struct TestServer {
  CompileService service;
  qrc::net::Server server;

  explicit TestServer(bool with_model = true)
      : service(ServiceConfig{}), server(service, [] {
          qrc::net::ServerConfig net_config;
          net_config.host = "127.0.0.1";
          net_config.port = 0;
          net_config.metrics_port = 0;  // ephemeral ops/metrics listener
          return net_config;
        }()) {
    if (with_model) {
      service.registry().add("fidelity", shared_handle());
    }
    server.start();
  }
};

/// Sends raw bytes to the ops listener and reads until the server closes.
std::string http_exchange(int port, const std::string& raw) {
  const qrc::net::Socket sock = qrc::net::connect_tcp("127.0.0.1", port);
  qrc::net::send_all(sock.fd(), raw);
  // Half-close so a request without a header terminator reads as a
  // truncated head (EOF) instead of leaving the server waiting for more.
  ::shutdown(sock.fd(), SHUT_WR);
  std::string response;
  char buf[8192];
  for (;;) {
    const auto n = ::recv(sock.fd(), buf, sizeof(buf), 0);
    if (n <= 0) {
      break;
    }
    response.append(buf, static_cast<std::size_t>(n));
  }
  return response;
}

std::string http_get(int port, const std::string& path) {
  return http_exchange(port, "GET " + path + " HTTP/1.0\r\n\r\n");
}

/// The body of an HTTP response (everything after the header terminator).
std::string body_of(const std::string& response) {
  const auto pos = response.find("\r\n\r\n");
  return pos == std::string::npos ? "" : response.substr(pos + 4);
}

int count_occurrences(const std::string& haystack, const std::string& needle) {
  int count = 0;
  for (auto pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

// ---------------------------------------------------------------- logger ---

TEST(LogTest, LevelGatesEmissionAndRingRetainsLines) {
  Logger& log = Logger::instance();
  log.clear();
  log.set_sink_fd(-1);  // ring only: no stderr noise from tests
  log.set_level(LogLevel::kInfo);

  const auto before = log.emitted();
  EXPECT_FALSE(qrc::obs::log_debug("test", "suppressed below info"));
  EXPECT_EQ(log.emitted(), before);

  EXPECT_TRUE(qrc::obs::log_info("test", "hello ops"));
  EXPECT_TRUE(qrc::obs::log_warn("test", "warned"));
  EXPECT_EQ(log.emitted(), before + 2);

  const auto lines = log.recent(8);
  ASSERT_GE(lines.size(), 2u);
  EXPECT_NE(lines[lines.size() - 2].find("[test] hello ops"),
            std::string::npos);
  EXPECT_NE(lines.back().find("warn"), std::string::npos);

  log.set_level(LogLevel::kOff);
  EXPECT_FALSE(qrc::obs::log_error("test", "nothing gets past off"));
  log.set_sink_fd(2);
  log.set_level(LogLevel::kInfo);
}

TEST(LogTest, ParseLevelNamesAndAliases) {
  EXPECT_EQ(qrc::obs::parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(qrc::obs::parse_log_level("warn"), LogLevel::kWarn);
  EXPECT_EQ(qrc::obs::parse_log_level("warning"), LogLevel::kWarn);
  EXPECT_EQ(qrc::obs::parse_log_level("off"), LogLevel::kOff);
  EXPECT_EQ(qrc::obs::parse_log_level("none"), LogLevel::kOff);
  EXPECT_FALSE(qrc::obs::parse_log_level("verbose").has_value());
  EXPECT_EQ(qrc::obs::log_level_name(LogLevel::kError), "error");
}

TEST(LogTest, RateLimiterBoundsPerSiteEmission) {
  Logger& log = Logger::instance();
  log.clear();
  log.set_sink_fd(-1);
  log.set_level(LogLevel::kInfo);

  const auto emitted_before = log.emitted();
  const auto limited_before = log.rate_limited();
  for (int i = 0; i < 50; ++i) {
    log.log_rate_limited(LogLevel::kWarn, "test", "flood", 2, "same site");
  }
  // At most 2 per one-second window; 50 calls can straddle one boundary.
  EXPECT_LE(log.emitted() - emitted_before, 4u);
  EXPECT_GE(log.rate_limited() - limited_before, 46u);

  // A different (tag, key) site has its own budget.
  EXPECT_TRUE(
      log.log_rate_limited(LogLevel::kWarn, "test", "other", 2, "fresh"));
  log.set_sink_fd(2);
}

TEST(LogTest, JsonModeEmitsParsableObjects) {
  Logger& log = Logger::instance();
  log.clear();
  log.set_sink_fd(-1);
  log.set_level(LogLevel::kInfo);
  log.set_json(true);
  ASSERT_TRUE(qrc::obs::log_info("test", "json \"quoted\" payload"));
  log.set_json(false);

  const auto lines = log.recent(1);
  ASSERT_EQ(lines.size(), 1u);
  const auto obj = JsonValue::parse(lines.back()).as_object();
  EXPECT_EQ(obj.at("level").as_string(), "info");
  EXPECT_EQ(obj.at("tag").as_string(), "test");
  EXPECT_EQ(obj.at("msg").as_string(), "json \"quoted\" payload");
  EXPECT_EQ(obj.count("ts"), 1u);
  log.set_sink_fd(2);
}

// ------------------------------------------------------- flight recorder ---

TEST(FlightRecorderTest, WraparoundKeepsTheMostRecentEvents) {
  FlightRecorder& rec = FlightRecorder::instance();
  rec.clear();
  const int total = static_cast<int>(FlightRecorder::kCapacity) + 50;
  for (int i = 0; i < total; ++i) {
    rec.record(FlightEventKind::kRequest, "test",
               "event " + std::to_string(i));
  }
  EXPECT_EQ(rec.total(), static_cast<std::uint64_t>(total));

  const auto events = rec.snapshot();
  ASSERT_EQ(events.size(), FlightRecorder::kCapacity);
  // Oldest-first, contiguous, ending at the newest seq.
  EXPECT_EQ(events.back().seq, static_cast<std::uint64_t>(total));
  EXPECT_EQ(events.front().seq,
            static_cast<std::uint64_t>(total) - FlightRecorder::kCapacity + 1);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, events[i - 1].seq + 1);
  }
  EXPECT_STREQ(events.back().tag, "test");
  EXPECT_EQ(std::string(events.back().detail),
            "event " + std::to_string(total - 1));
}

TEST(FlightRecorderTest, DumpJsonIsAParsableArray) {
  FlightRecorder& rec = FlightRecorder::instance();
  rec.clear();
  rec.record(FlightEventKind::kShed, "service", "lane 'x' shed \"r1\"");
  rec.record(FlightEventKind::kRefutation, "verify", "model m refuted");

  const auto parsed = JsonValue::parse(rec.dump_json()).as_array();
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].as_object().at("kind").as_string(), "shed");
  EXPECT_EQ(parsed[0].as_object().at("detail").as_string(),
            "lane 'x' shed \"r1\"");
  EXPECT_EQ(parsed[1].as_object().at("kind").as_string(), "refutation");
  EXPECT_GT(parsed[1].as_object().at("wall_us").as_number(), 0.0);
}

TEST(FlightRecorderTest, SigquitDumpsTheRingToTheInstalledFd) {
  FlightRecorder& rec = FlightRecorder::instance();
  rec.clear();
  rec.record(FlightEventKind::kShed, "service", "sigquit-shed-marker");
  rec.record(FlightEventKind::kError, "net", "sigquit-error-marker");

  char path[] = "/tmp/qrc_test_sigquit_XXXXXX";
  const int fd = ::mkstemp(path);
  ASSERT_GE(fd, 0);
  qrc::obs::install_sigquit_dump(fd);
  ASSERT_EQ(std::raise(SIGQUIT), 0);
  std::signal(SIGQUIT, SIG_DFL);

  std::ifstream is(path);
  std::stringstream buffer;
  buffer << is.rdbuf();
  const std::string dump = buffer.str();
  ::close(fd);
  ::unlink(path);

  EXPECT_NE(dump.find("sigquit-shed-marker"), std::string::npos) << dump;
  EXPECT_NE(dump.find("sigquit-error-marker"), std::string::npos);
  EXPECT_NE(dump.find("shed"), std::string::npos);
}

// ---------------------------------------------------------- ops endpoints ---

TEST(OpsEndpointsTest, AllFourEndpointsAnswerOnALiveServer) {
  TestServer ts;
  const int port = ts.server.metrics_port();
  ASSERT_GE(port, 0);

  const std::string health = http_get(port, "/healthz");
  EXPECT_NE(health.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_EQ(body_of(health), "ok\n");

  const std::string ready = http_get(port, "/readyz");
  EXPECT_NE(ready.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_EQ(body_of(ready), "ready\n");

  const std::string status = http_get(port, "/statusz");
  EXPECT_NE(status.find("HTTP/1.0 200 OK"), std::string::npos);
  const std::string status_body = body_of(status);
  EXPECT_NE(status_body.find(qrc::obs::build_info().git_sha),
            std::string::npos);
  EXPECT_NE(status_body.find("uptime_s: "), std::string::npos);
  EXPECT_NE(status_body.find("models: fidelity"), std::string::npos);
  EXPECT_NE(status_body.find("flight recorder"), std::string::npos);

  const std::string debug = http_get(port, "/debugz");
  EXPECT_NE(debug.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(debug.find("application/json"), std::string::npos);
  EXPECT_TRUE(JsonValue::parse(body_of(debug)).is_array());

  // /metrics carries the build-info gauge stamped at construction.
  const std::string metrics = http_get(port, "/metrics");
  EXPECT_NE(metrics.find("qrc_build_info{"), std::string::npos);
  EXPECT_NE(metrics.find("simd_kernel="), std::string::npos);
}

TEST(OpsEndpointsTest, ReadyzReports503WithoutModels) {
  TestServer ts(/*with_model=*/false);
  const std::string ready = http_get(ts.server.metrics_port(), "/readyz");
  EXPECT_NE(ready.find("HTTP/1.0 503 Service Unavailable"),
            std::string::npos);
  EXPECT_EQ(body_of(ready), "not ready: no models loaded\n");
  // Liveness stays green: the loop is answering even with nothing loaded.
  EXPECT_NE(http_get(ts.server.metrics_port(), "/healthz")
                .find("HTTP/1.0 200 OK"),
            std::string::npos);
}

TEST(OpsEndpointsTest, HeadPostAndMalformedRequestsAreDeterministic) {
  TestServer ts;
  const int port = ts.server.metrics_port();

  // HEAD: full headers with the real Content-Length, body suppressed.
  const std::string head =
      http_exchange(port, "HEAD /healthz HTTP/1.0\r\n\r\n");
  EXPECT_NE(head.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(head.find("Content-Length: 3"), std::string::npos);
  EXPECT_EQ(body_of(head), "");

  // POST is well-formed but unsupported: 405 with an Allow header.
  const std::string post = http_exchange(
      port, "POST /metrics HTTP/1.0\r\nContent-Length: 0\r\n\r\n");
  EXPECT_NE(post.find("HTTP/1.0 405 Method Not Allowed"), std::string::npos);
  EXPECT_NE(post.find("Allow: GET, HEAD"), std::string::npos);

  // Garbage request line: 400, not silence.
  const std::string garbage = http_exchange(port, "nonsense\r\n\r\n");
  EXPECT_NE(garbage.find("HTTP/1.0 400 Bad Request"), std::string::npos);

  // A head truncated by EOF also gets a 400.
  const std::string truncated = http_exchange(port, "GET /healthz");
  EXPECT_NE(truncated.find("HTTP/1.0 400 Bad Request"), std::string::npos);
  EXPECT_NE(truncated.find("truncated request head"), std::string::npos);

  // An unterminated head over 16KB is refused without waiting for more.
  const std::string oversized =
      http_exchange(port, "GET /" + std::string(17 << 10, 'a'));
  EXPECT_NE(oversized.find("HTTP/1.0 400 Bad Request"), std::string::npos);
  EXPECT_NE(oversized.find("request head exceeds 16KB"), std::string::npos);
}

TEST(OpsEndpointsTest, PipelinedRequestsAnswerOnceAndScrapesAreCounted) {
  TestServer ts;
  const int port = ts.server.metrics_port();
  const auto scrapes_before =
      ts.service.metrics().counter_value("qrc_net_metrics_scrapes_total");

  // Two pipelined GETs in one write: exactly one response, then close.
  const std::string response = http_exchange(
      port,
      "GET /metrics HTTP/1.0\r\n\r\nGET /metrics HTTP/1.0\r\n\r\n");
  EXPECT_EQ(count_occurrences(response, "HTTP/1.0 200 OK"), 1);
  EXPECT_NE(response.find("Connection: close"), std::string::npos);

  // One more ordinary scrape; the counter reflects both answered scrapes
  // (the dropped pipelined follower was never answered, so never counted).
  (void)http_get(port, "/metrics");
  EXPECT_EQ(
      ts.service.metrics().counter_value("qrc_net_metrics_scrapes_total"),
      scrapes_before + 2);

  // Hits on other endpoints do not inflate the scrape counter.
  (void)http_get(port, "/healthz");
  EXPECT_EQ(
      ts.service.metrics().counter_value("qrc_net_metrics_scrapes_total"),
      scrapes_before + 2);
}

TEST(OpsEndpointsTest, DebugDumpWireOpReturnsTheEventArray) {
  FlightRecorder::instance().clear();
  FlightRecorder::instance().record(FlightEventKind::kDeadlineHit, "test",
                                    "wire-dump-marker");
  TestServer ts;
  const qrc::net::Socket sock =
      qrc::net::connect_tcp("127.0.0.1", ts.server.port());
  qrc::net::LineReader reader(sock.fd());
  qrc::net::send_all(sock.fd(),
                     "{\"v\":1,\"op\":\"debug_dump\",\"id\":\"d1\"}\n");
  const auto line = reader.next_line();
  ASSERT_TRUE(line.has_value());
  const auto frame = JsonValue::parse(*line).as_object();
  EXPECT_EQ(frame.at("id").as_string(), "d1");
  EXPECT_EQ(frame.at("type").as_string(), "result");
  EXPECT_EQ(frame.at("op").as_string(), "debug_dump");
  const auto& events = frame.at("events").as_array();
  bool found = false;
  for (const auto& ev : events) {
    found = found || ev.as_object().at("detail").as_string() ==
                         "wire-dump-marker";
  }
  EXPECT_TRUE(found) << *line;
}

// ------------------------------------------------------ training telemetry ---

qrc::core::PredictorConfig tiny_train_config() {
  qrc::core::PredictorConfig config;
  config.reward = qrc::reward::RewardKind::kFidelity;
  config.seed = 29;
  config.ppo.total_timesteps = 768;
  config.ppo.steps_per_update = 256;
  config.ppo.hidden_sizes = {16};
  config.num_envs = 2;  // exercise train_ppo_vec, the production path
  return config;
}

TEST(TrainTelemetryTest, TrainingPublishesTheMetricFamilies) {
  MetricsRegistry registry;
  Predictor predictor(tiny_train_config());
  const auto stats = predictor.train({small_ghz()}, {}, &registry);
  ASSERT_FALSE(stats.empty());

  const auto families = registry.family_names("qrc_train_");
  EXPECT_GE(families.size(), 6u) << "got " << families.size() << " families";
  EXPECT_EQ(registry.counter_value("qrc_train_updates_total"), stats.size());
  EXPECT_GT(registry.counter_value("qrc_train_timesteps_total"), 0u);
  for (const char* name :
       {"qrc_train_policy_loss", "qrc_train_value_loss", "qrc_train_entropy",
        "qrc_train_approx_kl", "qrc_train_clip_fraction",
        "qrc_train_episode_reward_mean"}) {
    EXPECT_TRUE(std::isfinite(registry.float_gauge_value(name)))
        << name << " missing or non-finite";
  }
  // The last update's numbers are what the gauges retain.
  EXPECT_DOUBLE_EQ(registry.float_gauge_value("qrc_train_policy_loss"),
                   stats.back().policy_loss);
  EXPECT_DOUBLE_EQ(
      registry.float_gauge_value("qrc_train_episode_reward_mean"),
      stats.back().mean_episode_reward);
  EXPECT_GT(registry.float_gauge_value("qrc_train_env_steps_per_sec"), 0.0);
}

TEST(TrainTelemetryTest, JsonlLoggerWritesOneRecordPerUpdate) {
  char path[] = "/tmp/qrc_test_curves_XXXXXX";
  const int fd = ::mkstemp(path);
  ASSERT_GE(fd, 0);
  ::close(fd);

  std::size_t callbacks = 0;
  {
    qrc::obs::TrainingLogger jsonl{std::string(path)};
    ASSERT_TRUE(jsonl.ok());
    Predictor predictor(tiny_train_config());
    const auto progress = [&](const qrc::rl::PpoUpdateStats& u) {
      ++callbacks;
      jsonl.write({{"update", static_cast<double>(u.update_index)},
                   {"policy_loss", u.policy_loss},
                   {"approx_kl", u.approx_kl},
                   {"clip_fraction", u.clip_fraction},
                   {"mean_episode_reward", u.mean_episode_reward}});
    };
    const auto stats = predictor.train({small_ghz()}, progress);
    EXPECT_EQ(callbacks, stats.size());
    EXPECT_EQ(jsonl.records(), stats.size());
  }

  std::ifstream is(path);
  std::string line;
  std::size_t parsed = 0;
  double last_update = -1.0;
  while (std::getline(is, line)) {
    const auto obj = JsonValue::parse(line).as_object();
    EXPECT_GT(obj.at("update").as_number(), last_update);
    last_update = obj.at("update").as_number();
    EXPECT_EQ(obj.count("policy_loss"), 1u);
    EXPECT_EQ(obj.count("clip_fraction"), 1u);
    ++parsed;
  }
  ::unlink(path);
  EXPECT_EQ(parsed, callbacks);
  EXPECT_GE(parsed, 2u);  // 768 steps / 256 per update / 2 envs rounds up
}

TEST(TrainTelemetryTest, TelemetryLeavesTrainingBitwiseUnchanged) {
  // Quiet run: no registry, logger off.
  Logger::instance().set_level(LogLevel::kOff);
  Predictor plain(tiny_train_config());
  const auto plain_stats = plain.train({small_ghz()});
  std::ostringstream plain_model;
  plain.save(plain_model);

  // Fully instrumented run: registry, JSONL progress, debug-level logging
  // into the ring.
  Logger::instance().set_sink_fd(-1);
  Logger::instance().set_level(LogLevel::kDebug);
  char path[] = "/tmp/qrc_test_invisible_XXXXXX";
  const int fd = ::mkstemp(path);
  ASSERT_GE(fd, 0);
  ::close(fd);
  MetricsRegistry registry;
  qrc::obs::TrainingLogger jsonl{std::string(path)};
  Predictor instrumented(tiny_train_config());
  const auto instrumented_stats = instrumented.train(
      {small_ghz()},
      [&](const qrc::rl::PpoUpdateStats& u) {
        jsonl.write({{"update", static_cast<double>(u.update_index)},
                     {"policy_loss", u.policy_loss}});
        qrc::obs::log_debug("train", "update done");
      },
      &registry);
  std::ostringstream instrumented_model;
  instrumented.save(instrumented_model);
  ::unlink(path);
  Logger::instance().set_sink_fd(2);
  Logger::instance().set_level(LogLevel::kInfo);

  ASSERT_EQ(plain_stats.size(), instrumented_stats.size());
  for (std::size_t i = 0; i < plain_stats.size(); ++i) {
    EXPECT_EQ(plain_stats[i].mean_episode_reward,
              instrumented_stats[i].mean_episode_reward);
    EXPECT_EQ(plain_stats[i].policy_loss, instrumented_stats[i].policy_loss);
    EXPECT_EQ(plain_stats[i].approx_kl, instrumented_stats[i].approx_kl);
  }
  EXPECT_EQ(plain_model.str(), instrumented_model.str());
}

}  // namespace
