// End-to-end integration sweeps: every benchmark family walks the full
// Fig. 2 flow (scripted action sequence) onto real devices and through
// both baseline pipelines; executability invariants must hold everywhere.
// Parameterized over (family x device) per the TEST_P sweep style.

#include <gtest/gtest.h>

#include "baselines/baselines.hpp"
#include "bench_suite/benchmarks.hpp"
#include "core/actions.hpp"
#include "device/library.hpp"

namespace {

using qrc::bench::BenchmarkFamily;
using qrc::core::ActionRegistry;
using qrc::core::CompilationState;
using qrc::core::MdpState;
using qrc::device::DeviceId;

/// Scripted "sensible" flow: synthesis, sabre layout, routing if needed,
/// re-synthesis, cleanup.
void scripted_flow(CompilationState& state, const char* platform,
                   const char* device) {
  const auto& registry = ActionRegistry::instance();
  const auto apply = [&](std::string_view name) {
    const int id = registry.index_of(name);
    if (registry.at(id).valid(state)) {
      registry.at(id).apply(state, 5);
    }
  };
  apply(platform);
  apply(device);
  apply("BasisTranslator");
  apply("SabreLayout");
  apply("SabreSwap");
  apply("BasisTranslator");
  apply("Optimize1qGatesDecomposition");
  apply("RemoveRedundancies");
}

struct Target {
  DeviceId id;
  const char* platform_action;
  const char* device_action;
};

class FamilyDeviceIntegrationTest
    : public ::testing::TestWithParam<std::tuple<BenchmarkFamily, int>> {};

TEST_P(FamilyDeviceIntegrationTest, ScriptedFlowReachesDone) {
  static constexpr Target kTargets[] = {
      {DeviceId::kIbmqMontreal, "platform_ibm", "device_ibmq_montreal"},
      {DeviceId::kIonqHarmony, "platform_ionq", "device_ionq_harmony"},
      {DeviceId::kRigettiAspenM2, "platform_rigetti",
       "device_rigetti_aspen_m2"},
  };
  const auto [family, target_idx] = GetParam();
  const Target& target = kTargets[target_idx];
  const auto& dev = qrc::device::get_device(target.id);

  CompilationState state;
  state.circuit = qrc::bench::make_benchmark(family, 5, 1);
  scripted_flow(state, target.platform_action, target.device_action);

  ASSERT_EQ(state.state(), MdpState::kDone)
      << qrc::bench::family_name(family) << " on " << dev.name();
  EXPECT_TRUE(dev.circuit_is_native(state.circuit));
  EXPECT_TRUE(dev.circuit_respects_topology(state.circuit));
  // Measurements survive the flow.
  EXPECT_EQ(state.circuit.count_ops().at("measure"), 5);
}

INSTANTIATE_TEST_SUITE_P(
    AllFamiliesTimesDevices, FamilyDeviceIntegrationTest,
    ::testing::Combine(::testing::ValuesIn(qrc::bench::all_families()),
                       ::testing::Values(0, 1, 2)));

class FamilyBaselineIntegrationTest
    : public ::testing::TestWithParam<BenchmarkFamily> {};

TEST_P(FamilyBaselineIntegrationTest, BothBaselinesCompileEveryFamily) {
  const auto family = GetParam();
  const auto& montreal = qrc::device::get_device(DeviceId::kIbmqMontreal);
  const auto circuit = qrc::bench::make_benchmark(family, 6, 2);
  const auto o3 = qrc::baselines::compile_qiskit_o3_like(circuit, montreal, 2);
  EXPECT_TRUE(montreal.circuit_is_native(o3.circuit));
  EXPECT_TRUE(montreal.circuit_respects_topology(o3.circuit));
  const auto o2 = qrc::baselines::compile_tket_o2_like(circuit, montreal, 2);
  EXPECT_TRUE(montreal.circuit_is_native(o2.circuit));
  EXPECT_TRUE(montreal.circuit_respects_topology(o2.circuit));
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, FamilyBaselineIntegrationTest,
                         ::testing::ValuesIn(qrc::bench::all_families()));

}  // namespace
