// Tests for the RL substrate: MLP gradients (numerical check), Adam,
// masked categorical distribution, GAE behaviour through PPO on toy
// environments, and serialisation round-trips.

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <span>
#include <sstream>

#include "rl/adam.hpp"
#include "rl/categorical.hpp"
#include "rl/env.hpp"
#include "rl/mlp.hpp"
#include "rl/ppo.hpp"
#include "rl/thread_pool.hpp"

namespace {

using qrc::rl::Adam;
using qrc::rl::BatchedMaskedCategorical;
using qrc::rl::Env;
using qrc::rl::MaskedCategorical;
using qrc::rl::Mlp;
using qrc::rl::PpoConfig;
using qrc::rl::StepResult;
using qrc::rl::WorkerPool;

// ------------------------------------------------------------------ MLP ---

TEST(MlpTest, ForwardShapes) {
  Mlp net({3, 8, 2}, 1);
  const std::vector<double> x{0.1, -0.4, 0.7};
  const auto y = net.forward(x);
  ASSERT_EQ(y.size(), 2U);
}

TEST(MlpTest, ForwardMatchesCachedForward) {
  Mlp net({4, 16, 16, 3}, 2);
  const std::vector<double> x{0.3, -0.2, 0.9, 0.0};
  const auto a = net.forward(x);
  const auto b = net.forward_cached(x);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i], b[i], 1e-14);
  }
}

TEST(MlpTest, NumericalGradientCheck) {
  // Loss = sum of outputs squared / 2; check dL/dparam by finite
  // differences on a small net.
  Mlp net({3, 5, 2}, 7);
  const std::vector<double> x{0.2, -0.5, 0.8};

  const auto loss_of = [&](Mlp& m) {
    const auto y = m.forward(x);
    double l = 0.0;
    for (const double v : y) {
      l += 0.5 * v * v;
    }
    return l;
  };

  // Analytic gradients.
  net.zero_grad();
  const auto y = net.forward_cached(x);
  std::vector<double> grad_out(y.begin(), y.end());  // dL/dy = y
  net.backward(grad_out);

  std::vector<double*> params;
  std::vector<double*> grads;
  net.collect_parameters(params, grads);

  std::mt19937_64 rng(11);
  std::uniform_int_distribution<std::size_t> pick(0, params.size() - 1);
  const double eps = 1e-6;
  for (int trial = 0; trial < 25; ++trial) {
    const std::size_t i = pick(rng);
    const double orig = *params[i];
    *params[i] = orig + eps;
    const double lp = loss_of(net);
    *params[i] = orig - eps;
    const double lm = loss_of(net);
    *params[i] = orig;
    const double numeric = (lp - lm) / (2.0 * eps);
    EXPECT_NEAR(*grads[i], numeric, 1e-5)
        << "param " << i << " trial " << trial;
  }
}

TEST(MlpTest, GradientsAccumulate) {
  Mlp net({2, 4, 1}, 3);
  const std::vector<double> x{0.5, -0.5};
  net.zero_grad();
  (void)net.forward_cached(x);
  const std::array<double, 1> g{1.0};
  net.backward(g);
  std::vector<double*> params;
  std::vector<double*> grads;
  net.collect_parameters(params, grads);
  const double first = *grads[0];
  (void)net.forward_cached(x);
  net.backward(g);
  EXPECT_NEAR(*grads[0], 2.0 * first, 1e-12);
}

TEST(MlpTest, ForwardBatchMatchesScalarBitwise) {
  constexpr int kBatch = 13;
  const Mlp net({5, 16, 8, 3}, 21);
  std::mt19937_64 rng(77);
  std::uniform_real_distribution<double> uniform(-1.0, 1.0);
  std::vector<double> inputs(kBatch * 5);
  for (double& v : inputs) {
    v = uniform(rng);
  }
  std::vector<double> batch_out;
  net.forward_batch(inputs, kBatch, batch_out);
  ASSERT_EQ(batch_out.size(), static_cast<std::size_t>(kBatch * 3));
  for (int r = 0; r < kBatch; ++r) {
    const auto row = std::span<const double>(inputs).subspan(
        static_cast<std::size_t>(r) * 5, 5);
    const auto scalar = net.forward(row);
    for (int j = 0; j < 3; ++j) {
      // EXPECT_EQ: the batched path must be bitwise-identical, not just
      // numerically close.
      EXPECT_EQ(scalar[static_cast<std::size_t>(j)],
                batch_out[static_cast<std::size_t>(r * 3 + j)])
          << "row " << r << " output " << j;
    }
  }
  // Row-parallel execution on a pool must not change a single bit either.
  WorkerPool pool(4);
  std::vector<double> pooled_out;
  net.forward_batch(inputs, kBatch, pooled_out, &pool);
  EXPECT_EQ(pooled_out, batch_out);
}

TEST(MlpTest, BackwardBatchMatchesPerSampleBitwise) {
  constexpr int kBatch = 9;
  Mlp scalar_net({4, 12, 2}, 31);
  Mlp batch_net({4, 12, 2}, 31);  // same seed => identical weights
  std::mt19937_64 rng(13);
  std::uniform_real_distribution<double> uniform(-1.0, 1.0);
  std::vector<double> inputs(kBatch * 4);
  std::vector<double> grad_out(kBatch * 2);
  for (double& v : inputs) {
    v = uniform(rng);
  }
  for (double& v : grad_out) {
    v = uniform(rng);
  }

  scalar_net.zero_grad();
  for (int r = 0; r < kBatch; ++r) {
    (void)scalar_net.forward_cached(std::span<const double>(inputs).subspan(
        static_cast<std::size_t>(r) * 4, 4));
    scalar_net.backward(std::span<const double>(grad_out).subspan(
        static_cast<std::size_t>(r) * 2, 2));
  }

  batch_net.zero_grad();
  const auto& batch_out = batch_net.forward_batch_cached(inputs, kBatch);
  for (int r = 0; r < kBatch; ++r) {
    const auto scalar_out = scalar_net.forward(
        std::span<const double>(inputs).subspan(
            static_cast<std::size_t>(r) * 4, 4));
    EXPECT_EQ(scalar_out[0], batch_out[static_cast<std::size_t>(r * 2)]);
  }
  batch_net.backward_batch(grad_out, kBatch);

  std::vector<double*> pa;
  std::vector<double*> ga;
  std::vector<double*> pb;
  std::vector<double*> gb;
  scalar_net.collect_parameters(pa, ga);
  batch_net.collect_parameters(pb, gb);
  ASSERT_EQ(ga.size(), gb.size());
  for (std::size_t i = 0; i < ga.size(); ++i) {
    EXPECT_EQ(*ga[i], *gb[i]) << "gradient " << i;
  }
}

TEST(MlpTest, ForwardBatchRejectsBadShapes) {
  Mlp net({3, 4, 2}, 1);
  std::vector<double> out;
  const std::vector<double> data(7, 0.0);  // not a multiple of 3
  EXPECT_THROW(net.forward_batch(data, 2, out), std::invalid_argument);
  EXPECT_THROW((void)net.forward_batch_cached(data, 0),
               std::invalid_argument);
  const std::vector<double> grads(4, 0.0);
  EXPECT_THROW(net.backward_batch(grads, 2), std::invalid_argument);
}

TEST(MlpTest, SaveLoadRoundTrip) {
  Mlp net({3, 6, 4}, 5);
  std::stringstream ss;
  net.save(ss);
  Mlp back = Mlp::load(ss);
  const std::vector<double> x{0.1, 0.2, 0.3};
  const auto a = net.forward(x);
  const auto b = back.forward(x);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i], b[i], 1e-15);
  }
}

TEST(MlpTest, LoadRejectsGarbage) {
  std::stringstream ss("not a network");
  EXPECT_THROW((void)Mlp::load(ss), std::runtime_error);
}

// ----------------------------------------------------------------- Adam ---

TEST(AdamTest, MinimisesQuadratic) {
  // One-parameter problem: f(w) = (w - 3)^2.
  double w = 0.0;
  double g = 0.0;
  Adam opt({&w}, {&g}, {.lr = 0.1});
  for (int i = 0; i < 500; ++i) {
    g = 2.0 * (w - 3.0);
    opt.step();
  }
  EXPECT_NEAR(w, 3.0, 1e-2);
}

TEST(AdamTest, GradientClippingBoundsStep) {
  double w = 0.0;
  double g = 1e9;
  Adam opt({&w}, {&g}, {.lr = 0.1});
  opt.step(1.0);  // clip to unit norm
  // First Adam step magnitude is ~lr regardless, but must be finite/sane.
  EXPECT_LT(std::abs(w), 0.2);
}

// ----------------------------------------------------------- categorical --

TEST(CategoricalTest, ProbabilitiesSumToOne) {
  const std::vector<double> logits{0.3, -0.1, 2.0, 0.0};
  const std::vector<bool> mask{true, true, true, true};
  const MaskedCategorical dist(logits, mask);
  double sum = 0.0;
  for (const double p : dist.probs()) {
    sum += p;
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(CategoricalTest, MaskedActionsHaveZeroProbability) {
  const std::vector<double> logits{5.0, 1.0, 1.0};
  const std::vector<bool> mask{false, true, true};
  const MaskedCategorical dist(logits, mask);
  EXPECT_EQ(dist.probs()[0], 0.0);
  EXPECT_GT(dist.probs()[1], 0.0);
  std::mt19937_64 rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_NE(dist.sample(rng), 0);
  }
}

TEST(CategoricalTest, AllMaskedThrows) {
  const std::vector<double> logits{1.0, 2.0};
  const std::vector<bool> mask{false, false};
  EXPECT_THROW(MaskedCategorical(logits, mask), std::invalid_argument);
}

TEST(CategoricalTest, EntropyOfUniformIsLogN) {
  const std::vector<double> logits{0.7, 0.7, 0.7, 0.7};
  const std::vector<bool> mask{true, true, true, true};
  const MaskedCategorical dist(logits, mask);
  EXPECT_NEAR(dist.entropy(), std::log(4.0), 1e-12);
}

TEST(CategoricalTest, ArgmaxPicksLargestValid) {
  const std::vector<double> logits{9.0, 2.0, 3.0};
  const std::vector<bool> mask{false, true, true};
  const MaskedCategorical dist(logits, mask);
  EXPECT_EQ(dist.argmax(), 2);
}

TEST(CategoricalTest, LogProbGradSumsToZero) {
  const std::vector<double> logits{0.5, -1.0, 2.0};
  const std::vector<bool> mask{true, true, true};
  const MaskedCategorical dist(logits, mask);
  const auto grad = dist.log_prob_grad(1);
  double sum = 0.0;
  for (const double g : grad) {
    sum += g;
  }
  EXPECT_NEAR(sum, 0.0, 1e-12);
  EXPECT_GT(grad[1], 0.0);
}

TEST(CategoricalTest, SamplingFollowsDistribution) {
  const std::vector<double> logits{std::log(0.7), std::log(0.3)};
  const std::vector<bool> mask{true, true};
  const MaskedCategorical dist(logits, mask);
  std::mt19937_64 rng(42);
  int count0 = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    if (dist.sample(rng) == 0) {
      ++count0;
    }
  }
  EXPECT_NEAR(static_cast<double>(count0) / trials, 0.7, 0.02);
}

TEST(CategoricalTest, BatchedMatchesScalarBitwise) {
  const std::vector<std::vector<double>> logit_rows = {
      {0.3, -0.1, 2.0, 0.0},
      {5.0, 1.0, -2.0, 0.7},
      {0.0, 0.0, 0.0, 0.0},
  };
  const std::vector<std::vector<bool>> masks = {
      {true, true, true, true},
      {false, true, true, false},
      {true, false, true, true},
  };
  std::vector<double> flat;
  for (const auto& row : logit_rows) {
    flat.insert(flat.end(), row.begin(), row.end());
  }
  const BatchedMaskedCategorical batched(flat, masks);
  ASSERT_EQ(batched.batch_size(), 3);
  ASSERT_EQ(batched.num_actions(), 4);
  std::vector<double> grad_batched(4);
  for (int r = 0; r < 3; ++r) {
    const MaskedCategorical scalar(logit_rows[static_cast<std::size_t>(r)],
                                   masks[static_cast<std::size_t>(r)]);
    const auto row_probs = batched.probs(r);
    for (int a = 0; a < 4; ++a) {
      EXPECT_EQ(row_probs[static_cast<std::size_t>(a)],
                scalar.probs()[static_cast<std::size_t>(a)])
          << "row " << r << " action " << a;
      EXPECT_EQ(batched.log_prob(r, a), scalar.log_prob(a));
    }
    EXPECT_EQ(batched.argmax(r), scalar.argmax());
    EXPECT_EQ(batched.entropy(r), scalar.entropy());
    const int probe = scalar.argmax();
    batched.log_prob_grad(r, probe, grad_batched);
    const auto grad_scalar = scalar.log_prob_grad(probe);
    for (int a = 0; a < 4; ++a) {
      EXPECT_EQ(grad_batched[static_cast<std::size_t>(a)],
                grad_scalar[static_cast<std::size_t>(a)]);
    }
    batched.entropy_grad(r, grad_batched);
    const auto ent_scalar = scalar.entropy_grad();
    for (int a = 0; a < 4; ++a) {
      EXPECT_EQ(grad_batched[static_cast<std::size_t>(a)],
                ent_scalar[static_cast<std::size_t>(a)]);
    }
    // Sampling consumes the RNG stream identically.
    std::mt19937_64 rng_a(99 + static_cast<std::uint64_t>(r));
    std::mt19937_64 rng_b(99 + static_cast<std::uint64_t>(r));
    for (int t = 0; t < 64; ++t) {
      EXPECT_EQ(batched.sample(r, rng_a), scalar.sample(rng_b));
    }
  }
}

TEST(CategoricalTest, BatchedRejectsBadInput) {
  const std::vector<double> logits{0.0, 1.0};
  EXPECT_THROW(BatchedMaskedCategorical(logits, {}), std::invalid_argument);
  // Two rows of two actions need four logits.
  EXPECT_THROW(BatchedMaskedCategorical(logits, {{true, true}, {true, true}}),
               std::invalid_argument);
  // Ragged masks are rejected.
  const std::vector<double> four{0.0, 1.0, 2.0, 3.0};
  EXPECT_THROW(BatchedMaskedCategorical(four, {{true, true}, {true}}),
               std::invalid_argument);
  // A row with no valid action is rejected like the scalar distribution.
  EXPECT_THROW(BatchedMaskedCategorical(logits, {{false, false}}),
               std::invalid_argument);
}

// ------------------------------------------------------------- toy envs ---

/// One-step environment: 4 actions, reward = preset payout; action 2 pays
/// best. Tests basic policy improvement.
class BanditEnv final : public Env {
 public:
  int observation_size() const override { return 2; }
  int num_actions() const override { return 4; }
  std::vector<double> reset() override { return {1.0, 0.0}; }
  std::vector<bool> action_mask() const override {
    return {true, true, true, true};
  }
  StepResult step(int action) override {
    static constexpr double kPayout[4] = {0.1, 0.4, 1.0, 0.2};
    return {.observation = {1.0, 0.0},
            .reward = kPayout[action],
            .done = true,
            .truncated = false};
  }
};

/// Corridor of length 5: action 1 moves right (reward 1 at the end),
/// action 0 moves left. Action 2 is always invalid (mask honoured).
/// Episodes truncate after 20 steps.
class CorridorEnv final : public Env {
 public:
  int observation_size() const override { return 1; }
  int num_actions() const override { return 3; }
  std::vector<double> reset() override {
    pos_ = 0;
    steps_ = 0;
    return observe();
  }
  std::vector<bool> action_mask() const override {
    return {pos_ > 0, true, false};
  }
  StepResult step(int action) override {
    if (action == 2) {
      throw std::logic_error("CorridorEnv: invalid action taken");
    }
    pos_ += action == 1 ? 1 : -1;
    pos_ = std::max(0, pos_);
    ++steps_;
    StepResult r;
    r.observation = observe();
    if (pos_ >= 5) {
      r.reward = 1.0;
      r.done = true;
    } else if (steps_ >= 20) {
      r.truncated = true;
    }
    return r;
  }

 private:
  std::vector<double> observe() const {
    return {static_cast<double>(pos_) / 5.0};
  }
  int pos_ = 0;
  int steps_ = 0;
};

/// Endless one-state task paying reward 1 every step. Episodes never
/// reach a terminal state; they are either cut off by the time limit
/// (truncated — the value estimate of the next state must be
/// bootstrapped, so V heads towards 1/(1-gamma)) or, in the control
/// variant, genuinely terminated (V converges to the short episodic sum).
class EndlessRewardEnv final : public Env {
 public:
  explicit EndlessRewardEnv(bool truncate) : truncate_(truncate) {}
  int observation_size() const override { return 1; }
  int num_actions() const override { return 1; }
  std::vector<double> reset() override {
    steps_ = 0;
    return {1.0};
  }
  std::vector<bool> action_mask() const override { return {true}; }
  StepResult step(int) override {
    ++steps_;
    StepResult r;
    r.observation = {1.0};
    r.reward = 1.0;
    if (steps_ >= 2) {
      if (truncate_) {
        r.truncated = true;
      } else {
        r.done = true;
      }
    }
    return r;
  }

 private:
  bool truncate_ = false;
  int steps_ = 0;
};

TEST(PpoTest, TruncationBootstrapsValueEstimate) {
  // Identical MDPs except for how the 2-step episodes end. Treating the
  // time limit as terminal caps the value at 1 + gamma = 1.9; correct
  // truncation handling bootstraps V(s') and drives the estimate towards
  // the infinite-horizon 1/(1-gamma) = 10.
  PpoConfig config;
  config.total_timesteps = 8192;
  config.steps_per_update = 256;
  config.minibatch_size = 64;
  config.epochs_per_update = 10;
  config.gamma = 0.9;
  config.learning_rate = 1e-2;
  config.hidden_sizes = {8};
  config.seed = 4;
  EndlessRewardEnv truncating(true);
  EndlessRewardEnv terminating(false);
  const auto agent_trunc = qrc::rl::train_ppo(truncating, config);
  const auto agent_term = qrc::rl::train_ppo(terminating, config);
  const std::vector<double> obs{1.0};
  EXPECT_LT(agent_term.value(obs), 3.0);
  EXPECT_GT(agent_trunc.value(obs), 4.0);
  EXPECT_GT(agent_trunc.value(obs), agent_term.value(obs) + 1.0);
}

TEST(PpoTest, LearnsBanditOptimalArm) {
  BanditEnv env;
  PpoConfig config;
  config.total_timesteps = 4096;
  config.steps_per_update = 256;
  config.minibatch_size = 64;
  config.epochs_per_update = 6;
  config.learning_rate = 3e-3;
  config.hidden_sizes = {16};
  config.seed = 5;
  const auto agent = qrc::rl::train_ppo(env, config);
  const std::vector<double> obs{1.0, 0.0};
  const std::vector<bool> mask{true, true, true, true};
  EXPECT_EQ(agent.act_greedy(obs, mask), 2);
}

TEST(PpoTest, LearnsCorridorAndHonoursMask) {
  CorridorEnv env;
  PpoConfig config;
  config.total_timesteps = 8192;
  config.steps_per_update = 512;
  config.minibatch_size = 64;
  config.epochs_per_update = 8;
  config.learning_rate = 3e-3;
  config.hidden_sizes = {16};
  config.seed = 9;
  std::vector<qrc::rl::PpoUpdateStats> stats;
  const auto agent = qrc::rl::train_ppo(env, config, &stats);
  ASSERT_FALSE(stats.empty());
  // After training, the greedy policy should walk straight to the goal.
  auto obs = env.reset();
  int steps = 0;
  bool done = false;
  while (!done && steps < 20) {
    const auto mask = env.action_mask();
    const int action = agent.act_greedy(obs, mask);
    ASSERT_TRUE(mask[static_cast<std::size_t>(action)]);
    const auto result = env.step(action);
    obs = result.observation;
    done = result.done;
    ++steps;
  }
  EXPECT_TRUE(done);
  EXPECT_EQ(steps, 5);
  // Mean episode reward should improve from first to last update.
  EXPECT_GE(stats.back().mean_episode_reward,
            stats.front().mean_episode_reward);
}

TEST(PpoTest, TrainingIsDeterministicGivenSeed) {
  BanditEnv env_a;
  BanditEnv env_b;
  PpoConfig config;
  config.total_timesteps = 1024;
  config.steps_per_update = 256;
  config.hidden_sizes = {8};
  config.seed = 33;
  std::vector<qrc::rl::PpoUpdateStats> sa;
  std::vector<qrc::rl::PpoUpdateStats> sb;
  (void)qrc::rl::train_ppo(env_a, config, &sa);
  (void)qrc::rl::train_ppo(env_b, config, &sb);
  ASSERT_EQ(sa.size(), sb.size());
  for (std::size_t i = 0; i < sa.size(); ++i) {
    EXPECT_DOUBLE_EQ(sa[i].mean_episode_reward, sb[i].mean_episode_reward);
    EXPECT_DOUBLE_EQ(sa[i].policy_loss, sb[i].policy_loss);
  }
}

TEST(PpoTest, AgentSaveLoadRoundTrip) {
  BanditEnv env;
  PpoConfig config;
  config.total_timesteps = 1024;
  config.steps_per_update = 256;
  config.hidden_sizes = {8};
  config.seed = 2;
  const auto agent = qrc::rl::train_ppo(env, config);
  std::stringstream ss;
  agent.save(ss);
  const auto back = qrc::rl::PpoAgent::load(ss);
  const std::vector<double> obs{1.0, 0.0};
  const std::vector<bool> mask{true, true, true, true};
  EXPECT_EQ(agent.act_greedy(obs, mask), back.act_greedy(obs, mask));
  EXPECT_NEAR(agent.value(obs), back.value(obs), 1e-12);
}

}  // namespace
