// Tests for the vectorized rollout subsystem: the worker pool, VecEnv
// semantics (per-env masks, auto-reset, terminal observations), cheap
// CompilationEnv cloning, and vectorized PPO — determinism across runs and
// worker counts, mask honouring, and agreement with the serial path on a
// tiny compilation corpus.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <stdexcept>
#include <vector>

#include "bench_suite/benchmarks.hpp"
#include "core/compilation_env.hpp"
#include "core/predictor.hpp"
#include "rl/categorical.hpp"
#include "rl/mlp.hpp"
#include "rl/ppo.hpp"
#include "rl/thread_pool.hpp"
#include "rl/vec_env.hpp"

namespace {

using qrc::rl::Env;
using qrc::rl::PpoConfig;
using qrc::rl::PpoUpdateStats;
using qrc::rl::StepResult;
using qrc::rl::VecEnv;
using qrc::rl::WorkerPool;

// ----------------------------------------------------------- worker pool --

TEST(WorkerPoolTest, CoversEveryIndexExactlyOnce) {
  for (const int workers : {1, 2, 4}) {
    WorkerPool pool(workers);
    std::vector<std::atomic<int>> hits(97);
    pool.parallel_for(97, [&](int i) {
      hits[static_cast<std::size_t>(i)].fetch_add(1);
    });
    for (const auto& h : hits) {
      EXPECT_EQ(h.load(), 1);
    }
  }
}

TEST(WorkerPoolTest, PropagatesExceptions) {
  WorkerPool pool(3);
  EXPECT_THROW(pool.parallel_for(16,
                                 [&](int i) {
                                   if (i == 7) {
                                     throw std::runtime_error("boom");
                                   }
                                 }),
               std::runtime_error);
  // The pool must stay usable after a failed job.
  std::atomic<int> count{0};
  pool.parallel_for(8, [&](int) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 8);
}

// ------------------------------------------------------------- toy envs ---

/// Corridor of length 5: action 1 moves right (reward 1 at the end),
/// action 0 moves left (invalid at the start). Action 2 is never valid;
/// stepping it throws, so PPO must honour the mask. Episodes truncate
/// after 20 steps.
class CorridorEnv final : public Env {
 public:
  int observation_size() const override { return 1; }
  int num_actions() const override { return 3; }
  std::vector<double> reset() override {
    pos_ = 0;
    steps_ = 0;
    ++episodes_;
    return observe();
  }
  std::vector<bool> action_mask() const override {
    return {pos_ > 0, true, false};
  }
  StepResult step(int action) override {
    if (action == 2 || (action == 0 && pos_ == 0)) {
      throw std::logic_error("CorridorEnv: invalid action taken");
    }
    pos_ += action == 1 ? 1 : -1;
    ++steps_;
    StepResult r;
    r.observation = observe();
    if (pos_ >= 5) {
      r.reward = 1.0;
      r.done = true;
    } else if (steps_ >= 20) {
      r.truncated = true;
    }
    return r;
  }
  int episodes() const { return episodes_; }
  int position() const { return pos_; }

 private:
  std::vector<double> observe() const {
    return {static_cast<double>(pos_) / 5.0};
  }
  int pos_ = 0;
  int steps_ = 0;
  int episodes_ = 0;
};

VecEnv make_corridors(int num_envs, int num_workers) {
  return VecEnv([](int) { return std::make_unique<CorridorEnv>(); },
                num_envs, num_workers);
}

// --------------------------------------------------------------- VecEnv ---

TEST(VecEnvTest, MasksTrackEachEnvIndependently) {
  VecEnv envs = make_corridors(3, 2);
  envs.reset();
  // All envs start at pos 0: moving left is masked out.
  for (int e = 0; e < 3; ++e) {
    EXPECT_EQ(envs.action_masks()[static_cast<std::size_t>(e)],
              (std::vector<bool>{false, true, false}));
  }
  // Move only env 1 to the right: its mask must open action 0, the
  // others must stay unchanged.
  envs.step({1, 1, 1});
  envs.step({1, 1, 1});
  auto& env0 = dynamic_cast<CorridorEnv&>(envs.env(0));
  while (env0.position() > 0) {
    envs.step({0, 1, 1});
  }
  EXPECT_EQ(envs.action_masks()[0], (std::vector<bool>{false, true, false}));
  EXPECT_EQ(envs.action_masks()[1], (std::vector<bool>{true, true, false}));
  EXPECT_EQ(envs.action_masks()[2], (std::vector<bool>{true, true, false}));
}

TEST(VecEnvTest, AutoResetKeepsTerminalObservation) {
  VecEnv envs = make_corridors(2, 1);
  envs.reset();
  // Walk env 0 to the goal in 5 steps while env 1 oscillates.
  for (int t = 0; t < 5; ++t) {
    const int other = t % 2 == 0 ? 1 : 0;
    envs.step({1, other});
  }
  const auto& results = envs.results();
  EXPECT_TRUE(results[0].done);
  // Terminal observation (pos 5) is preserved in the step result...
  EXPECT_DOUBLE_EQ(results[0].observation[0], 1.0);
  // ...while the live observation has been auto-reset to pos 0.
  EXPECT_DOUBLE_EQ(envs.observations()[0][0], 0.0);
  EXPECT_EQ(dynamic_cast<CorridorEnv&>(envs.env(0)).episodes(), 2);
  EXPECT_EQ(dynamic_cast<CorridorEnv&>(envs.env(1)).episodes(), 1);
}

TEST(VecEnvTest, RejectsMismatchedActionCount) {
  VecEnv envs = make_corridors(2, 1);
  envs.reset();
  EXPECT_THROW(envs.step({1}), std::invalid_argument);
}

TEST(VecEnvTest, GatherObservationsIsRowMajorCopy) {
  VecEnv envs = make_corridors(3, 2);
  envs.reset();
  envs.step({1, 1, 1});
  envs.step({1, 0, 1});
  std::vector<double> flat;
  envs.gather_observations(flat);
  ASSERT_EQ(flat.size(), 3U);
  for (int e = 0; e < 3; ++e) {
    EXPECT_EQ(flat[static_cast<std::size_t>(e)],
              envs.observations()[static_cast<std::size_t>(e)][0]);
  }
}

// ----------------------------------------------- batched rollout parity ---

TEST(VecEnvTest, BatchedPolicyInferenceMatchesScalarBitwise) {
  // The rollout engine's batched round — gather, one forward_batch per
  // network, batched masked sampling — must produce exactly the actions,
  // log-probs and values of per-env scalar inference with the same RNG
  // streams.
  constexpr int kNumEnvs = 5;
  VecEnv envs = make_corridors(kNumEnvs, 2);
  envs.reset();
  PpoConfig agent_config;
  agent_config.hidden_sizes = {16};
  agent_config.seed = 3;
  qrc::rl::PpoAgent agent(envs.observation_size(), envs.num_actions(),
                          agent_config);
  std::vector<std::mt19937_64> batched_rngs;
  std::vector<std::mt19937_64> scalar_rngs;
  for (int e = 0; e < kNumEnvs; ++e) {
    batched_rngs.emplace_back(500 + 31 * static_cast<std::uint64_t>(e));
    scalar_rngs.emplace_back(500 + 31 * static_cast<std::uint64_t>(e));
  }
  WorkerPool pool(3);
  std::vector<double> obs_batch;
  std::vector<double> logits;
  std::vector<double> values;
  std::vector<int> actions(kNumEnvs, 0);
  for (int round = 0; round < 24; ++round) {
    envs.gather_observations(obs_batch);
    agent.policy().forward_batch(obs_batch, kNumEnvs, logits, &pool);
    agent.value_net().forward_batch(obs_batch, kNumEnvs, values, &pool);
    const qrc::rl::BatchedMaskedCategorical dist(logits,
                                                 envs.action_masks());
    for (int e = 0; e < kNumEnvs; ++e) {
      const auto idx = static_cast<std::size_t>(e);
      actions[idx] = dist.sample(e, batched_rngs[idx]);
      const int scalar_action = agent.act_sample(
          envs.observations()[idx], envs.action_masks()[idx],
          scalar_rngs[idx]);
      EXPECT_EQ(actions[idx], scalar_action)
          << "round " << round << " env " << e;
      EXPECT_EQ(values[idx], agent.value(envs.observations()[idx]));
    }
    envs.step(actions);
  }
}

// ------------------------------------------------- CompilationEnv clone ---

TEST(CompilationEnvCloneTest, ClonesShareCorpusAndDivergeBySeed) {
  const auto corpus = qrc::bench::benchmark_suite(2, 4, 6);
  qrc::core::CompilationEnvConfig config;
  config.seed = 3;
  const qrc::core::CompilationEnv prototype(corpus, config);
  const auto a = prototype.clone_with_seed(100);
  const auto b = prototype.clone_with_seed(100);
  const auto c = prototype.clone_with_seed(200);
  ASSERT_EQ(a->num_actions(), prototype.num_actions());
  // Same seed => identical episode streams.
  EXPECT_EQ(a->reset(), b->reset());
  EXPECT_EQ(a->action_mask(), b->action_mask());
  // Different seeds => independent streams (observations may still collide
  // on one reset; drive a few episodes and require at least one mismatch).
  bool diverged = false;
  for (int i = 0; i < 8 && !diverged; ++i) {
    diverged = a->reset() != c->reset();
  }
  EXPECT_TRUE(diverged);
}

// ------------------------------------------------------- vectorized PPO ---

PpoConfig small_config(std::uint64_t seed) {
  PpoConfig config;
  config.total_timesteps = 2048;
  config.steps_per_update = 256;
  config.minibatch_size = 64;
  config.epochs_per_update = 6;
  config.learning_rate = 3e-3;
  config.hidden_sizes = {16};
  config.seed = seed;
  return config;
}

TEST(VecPpoTest, DeterministicAcrossRunsForFixedSeedAndNumEnvs) {
  for (const int num_envs : {1, 4}) {
    std::vector<PpoUpdateStats> sa;
    std::vector<PpoUpdateStats> sb;
    {
      VecEnv envs = make_corridors(num_envs, 2);
      (void)qrc::rl::train_ppo_vec(envs, small_config(33), &sa);
    }
    {
      VecEnv envs = make_corridors(num_envs, 2);
      (void)qrc::rl::train_ppo_vec(envs, small_config(33), &sb);
    }
    ASSERT_EQ(sa.size(), sb.size());
    for (std::size_t i = 0; i < sa.size(); ++i) {
      EXPECT_DOUBLE_EQ(sa[i].mean_episode_reward, sb[i].mean_episode_reward)
          << "num_envs=" << num_envs << " update " << i;
      EXPECT_DOUBLE_EQ(sa[i].policy_loss, sb[i].policy_loss);
      EXPECT_DOUBLE_EQ(sa[i].value_loss, sb[i].value_loss);
      EXPECT_EQ(sa[i].episodes, sb[i].episodes);
    }
  }
}

TEST(VecPpoTest, WorkerCountDoesNotChangeResults) {
  std::vector<PpoUpdateStats> s1;
  std::vector<PpoUpdateStats> s4;
  {
    VecEnv envs = make_corridors(4, 1);
    (void)qrc::rl::train_ppo_vec(envs, small_config(7), &s1);
  }
  {
    VecEnv envs = make_corridors(4, 4);
    (void)qrc::rl::train_ppo_vec(envs, small_config(7), &s4);
  }
  ASSERT_EQ(s1.size(), s4.size());
  for (std::size_t i = 0; i < s1.size(); ++i) {
    EXPECT_DOUBLE_EQ(s1[i].mean_episode_reward, s4[i].mean_episode_reward);
    EXPECT_DOUBLE_EQ(s1[i].policy_loss, s4[i].policy_loss);
    EXPECT_DOUBLE_EQ(s1[i].value_loss, s4[i].value_loss);
    EXPECT_DOUBLE_EQ(s1[i].entropy, s4[i].entropy);
  }
}

TEST(VecPpoTest, LearnsCorridorAndHonoursMask) {
  // CorridorEnv throws on any masked action, so finishing training at all
  // proves the vectorized sampler honours every env's own mask.
  VecEnv envs = make_corridors(4, 2);
  PpoConfig config = small_config(9);
  config.total_timesteps = 8192;
  config.steps_per_update = 512;
  config.epochs_per_update = 8;
  std::vector<PpoUpdateStats> stats;
  const auto agent = qrc::rl::train_ppo_vec(envs, config, &stats);
  ASSERT_FALSE(stats.empty());
  CorridorEnv probe;
  auto obs = probe.reset();
  int steps = 0;
  bool done = false;
  while (!done && steps < 20) {
    const auto mask = probe.action_mask();
    const int action = agent.act_greedy(obs, mask);
    ASSERT_TRUE(mask[static_cast<std::size_t>(action)]);
    const auto result = probe.step(action);
    obs = result.observation;
    done = result.done;
    ++steps;
  }
  EXPECT_TRUE(done);
  EXPECT_EQ(steps, 5);
}

/// Endless one-state task paying reward 1 every step; episodes only ever
/// hit the time limit (see test_rl.cpp for the serial twin of this test).
class EndlessRewardEnv final : public Env {
 public:
  explicit EndlessRewardEnv(bool truncate) : truncate_(truncate) {}
  int observation_size() const override { return 1; }
  int num_actions() const override { return 1; }
  std::vector<double> reset() override {
    steps_ = 0;
    return {1.0};
  }
  std::vector<bool> action_mask() const override { return {true}; }
  StepResult step(int) override {
    ++steps_;
    StepResult r;
    r.observation = {1.0};
    r.reward = 1.0;
    if (steps_ >= 2) {
      if (truncate_) {
        r.truncated = true;
      } else {
        r.done = true;
      }
    }
    return r;
  }

 private:
  bool truncate_ = false;
  int steps_ = 0;
};

TEST(VecPpoTest, TruncationBootstrapsValueEstimate) {
  // Vectorized twin of PpoTest.TruncationBootstrapsValueEstimate: the
  // batched rollout loop must bootstrap V(s') on time-limit truncation
  // (value heads towards 1/(1-gamma) = 10), not treat it as terminal
  // (which caps the value at 1 + gamma = 1.9).
  PpoConfig config;
  config.total_timesteps = 8192;
  config.steps_per_update = 256;
  config.minibatch_size = 64;
  config.epochs_per_update = 10;
  config.gamma = 0.9;
  config.learning_rate = 1e-2;
  config.hidden_sizes = {8};
  config.seed = 4;
  const auto train = [&](bool truncate) {
    VecEnv envs(
        [&](int) { return std::make_unique<EndlessRewardEnv>(truncate); }, 4,
        2);
    return qrc::rl::train_ppo_vec(envs, config);
  };
  const auto agent_trunc = train(true);
  const auto agent_term = train(false);
  const std::vector<double> obs{1.0};
  EXPECT_LT(agent_term.value(obs), 3.0);
  EXPECT_GT(agent_trunc.value(obs), 4.0);
}

TEST(VecPpoTest, BitwiseDeterministicOnCompilationCorpus) {
  const auto corpus = qrc::bench::benchmark_suite(2, 3, 4);
  const auto run = [&](std::vector<PpoUpdateStats>& stats) {
    qrc::core::PredictorConfig config;
    config.seed = 11;
    config.env_max_steps = 24;
    config.ppo.total_timesteps = 1024;
    config.ppo.steps_per_update = 256;
    config.ppo.hidden_sizes = {16};
    config.num_envs = 4;
    config.rollout_workers = 2;
    qrc::core::Predictor predictor(config);
    stats = predictor.train(corpus);
  };
  std::vector<PpoUpdateStats> sa;
  std::vector<PpoUpdateStats> sb;
  run(sa);
  run(sb);
  ASSERT_EQ(sa.size(), sb.size());
  for (std::size_t i = 0; i < sa.size(); ++i) {
    EXPECT_DOUBLE_EQ(sa[i].mean_episode_reward, sb[i].mean_episode_reward);
    EXPECT_DOUBLE_EQ(sa[i].policy_loss, sb[i].policy_loss);
    EXPECT_DOUBLE_EQ(sa[i].value_loss, sb[i].value_loss);
    EXPECT_DOUBLE_EQ(sa[i].entropy, sb[i].entropy);
    EXPECT_EQ(sa[i].episodes, sb[i].episodes);
  }
}

TEST(VecPpoTest, MatchesSerialPathOnTinyCompilationCorpus) {
  const auto corpus = qrc::bench::benchmark_suite(2, 3, 4);
  qrc::core::CompilationEnvConfig env_config;
  env_config.seed = 5;
  env_config.max_steps = 24;

  PpoConfig config;
  config.total_timesteps = 1536;
  config.steps_per_update = 256;
  config.minibatch_size = 64;
  config.epochs_per_update = 4;
  config.hidden_sizes = {16};
  config.seed = 5;

  std::vector<PpoUpdateStats> serial_stats;
  {
    qrc::core::CompilationEnv env(corpus, env_config);
    (void)qrc::rl::train_ppo(env, config, &serial_stats);
  }
  std::vector<PpoUpdateStats> vec_stats;
  {
    const qrc::core::CompilationEnv prototype(corpus, env_config);
    VecEnv envs(
        [&](int i) {
          return prototype.clone_with_seed(
              5 + 7919 * static_cast<std::uint64_t>(i + 1));
        },
        4, 4);
    (void)qrc::rl::train_ppo_vec(envs, config, &vec_stats);
  }
  ASSERT_FALSE(serial_stats.empty());
  ASSERT_FALSE(vec_stats.empty());
  // Both paths train on the same MDP; their converged mean episode rewards
  // must agree within a tolerance (not bitwise — different RNG streams).
  const double serial_final = serial_stats.back().mean_episode_reward;
  const double vec_final = vec_stats.back().mean_episode_reward;
  EXPECT_NEAR(serial_final, vec_final, 0.25)
      << "serial " << serial_final << " vs vec " << vec_final;
}

}  // namespace
