// Compares the RL-optimized compiler against the Qiskit-O3-like and
// TKET-O2-like baseline pipelines on a selection of benchmark circuits —
// a miniature version of the paper's Fig. 3 experiment.
//
//   ./examples/compare_compilers [num_qubits]

#include <cstdio>
#include <cstdlib>

#include "baselines/baselines.hpp"
#include "bench_suite/benchmarks.hpp"
#include "core/predictor.hpp"
#include "device/library.hpp"

int main(int argc, char** argv) {
  using namespace qrc;
  const int n = argc > 1 ? std::atoi(argv[1]) : 6;
  if (n < 2 || n > 20) {
    std::fprintf(stderr, "usage: %s [num_qubits in 2..20]\n", argv[0]);
    return 1;
  }

  // Train a fidelity model (small budget; see bench/ for paper scale).
  core::PredictorConfig config;
  config.reward = reward::RewardKind::kFidelity;
  config.seed = 7;
  config.ppo.total_timesteps = 16384;
  core::Predictor predictor(config);
  std::printf("training RL compiler (16k timesteps)...\n");
  (void)predictor.train(bench::benchmark_suite(2, 12, 60));

  const auto& washington =
      device::get_device(device::DeviceId::kIbmqWashington);

  std::printf("\n%-16s %10s %10s %10s   %s\n", "benchmark", "RL", "qiskit-O3",
              "tket-O2", "(expected fidelity; baselines on ibmq_washington)");
  for (const auto family :
       {bench::BenchmarkFamily::kGhz, bench::BenchmarkFamily::kDj,
        bench::BenchmarkFamily::kQft, bench::BenchmarkFamily::kQaoa,
        bench::BenchmarkFamily::kVqe, bench::BenchmarkFamily::kWstate}) {
    const ir::Circuit circuit = bench::make_benchmark(family, n, 1);

    const auto rl = predictor.compile(circuit);
    const auto qiskit =
        baselines::compile_qiskit_o3_like(circuit, washington, 1);
    const auto tket = baselines::compile_tket_o2_like(circuit, washington, 1);

    const double f_rl = rl.reward;
    const double f_qiskit =
        reward::expected_fidelity(qiskit.circuit, washington);
    const double f_tket = reward::expected_fidelity(tket.circuit, washington);

    const char* winner = "tket-O2";
    if (f_rl >= f_qiskit && f_rl >= f_tket) {
      winner = "RL";
    } else if (f_qiskit >= f_tket) {
      winner = "qiskit-O3";
    }
    std::printf("%-16s %10.4f %10.4f %10.4f   best: %s\n",
                bench::family_name(family).data(), f_rl, f_qiskit, f_tket,
                winner);
    std::printf("%-16s   -> RL chose %s\n", "", rl.device->name().c_str());
  }
  return 0;
}
