// Quickstart: build a circuit, train a small RL compiler, compile the
// circuit, and inspect the result.
//
//   ./examples/quickstart
//
// Trains a fidelity-objective model on a handful of benchmark circuits
// (a few seconds) and prints the learned compilation flow for a GHZ state.

#include <cstdio>

#include "bench_suite/benchmarks.hpp"
#include "core/predictor.hpp"
#include "ir/qasm.hpp"

int main() {
  using namespace qrc;

  // 1. A circuit to compile: 5-qubit GHZ preparation with measurement.
  ir::Circuit circuit(5, "my_ghz");
  circuit.h(0);
  for (int i = 0; i + 1 < 5; ++i) {
    circuit.cx(i, i + 1);
  }
  circuit.measure_all();
  std::printf("input:  %s\n", circuit.summary().c_str());

  // 2. Train an RL compiler for expected fidelity on a small corpus.
  core::PredictorConfig config;
  config.reward = reward::RewardKind::kFidelity;
  config.seed = 42;
  config.ppo.total_timesteps = 8192;
  config.ppo.steps_per_update = 1024;
  core::Predictor predictor(config);

  const auto corpus = bench::benchmark_suite(2, 8, 40);
  std::printf("training on %zu circuits...\n", corpus.size());
  const auto stats = predictor.train(corpus);
  std::printf("trained: %zu updates, final mean episode reward %.3f\n",
              stats.size(), stats.back().mean_episode_reward);

  // 3. Compile and inspect.
  const auto result = predictor.compile(circuit);
  std::printf("\ncompiled onto %s (%d qubits)\n", result.device->name().c_str(),
              result.device->num_qubits());
  std::printf("expected fidelity: %.4f%s\n", result.reward,
              result.used_fallback ? "  [fallback used]" : "");
  std::printf("learned pass sequence:\n");
  for (const auto& action : result.action_trace) {
    std::printf("  - %s\n", action.c_str());
  }
  std::printf("\noutput: %s\n", result.circuit.summary().c_str());

  // 4. The result is a plain circuit: dump the first lines as OpenQASM.
  const std::string qasm = ir::to_qasm(result.circuit);
  std::printf("\nOpenQASM head:\n%.400s...\n", qasm.c_str());
  return 0;
}
