// Explores the device zoo: topology statistics, calibration summaries, and
// how the same circuit fares on every device when compiled with the
// baseline pipeline — motivating why the RL agent's device choice matters.
//
//   ./examples/device_explorer

#include <algorithm>
#include <cstdio>
#include <numeric>

#include "baselines/baselines.hpp"
#include "bench_suite/benchmarks.hpp"
#include "device/library.hpp"
#include "reward/reward.hpp"

int main() {
  using namespace qrc;

  std::printf("%-18s %-9s %7s %7s %12s %12s %12s\n", "device", "platform",
              "qubits", "edges", "1q err(avg)", "2q err(avg)", "readout");
  for (const device::Device* dev : device::all_devices()) {
    const auto& cal = dev->calibration();
    const auto mean = [](const std::vector<double>& v) {
      return std::accumulate(v.begin(), v.end(), 0.0) /
             static_cast<double>(v.size());
    };
    double two_q = 0.0;
    for (const auto& [edge, e] : cal.two_qubit_error) {
      two_q += e;
    }
    two_q /= static_cast<double>(cal.two_qubit_error.size());
    std::printf("%-18s %-9s %7d %7zu %12.2e %12.2e %12.2e\n",
                dev->name().c_str(),
                device::platform_name(dev->platform()).data(),
                dev->num_qubits(), dev->coupling().edges().size(),
                mean(cal.single_qubit_error), two_q,
                mean(cal.readout_error));
  }

  // Compile one circuit for every device that can host it.
  const int n = 8;
  const ir::Circuit circuit =
      bench::make_benchmark(bench::BenchmarkFamily::kGraphState, n, 2);
  std::printf("\ncompiling %s with the qiskit-O3-like baseline:\n",
              circuit.name().c_str());
  std::printf("%-18s %10s %8s %8s %10s\n", "device", "fidelity", "2q", "depth",
              "1-critdep");
  for (const device::Device* dev : device::all_devices()) {
    if (dev->num_qubits() < n) {
      std::printf("%-18s %10s\n", dev->name().c_str(), "too small");
      continue;
    }
    const auto result = baselines::compile_qiskit_o3_like(circuit, *dev, 1);
    std::printf("%-18s %10.4f %8d %8d %10.4f\n", dev->name().c_str(),
                reward::expected_fidelity(result.circuit, *dev),
                result.circuit.two_qubit_gate_count(), result.circuit.depth(),
                reward::critical_depth_reward(result.circuit));
  }
  std::printf(
      "\nNote how all-to-all connectivity (ionq_harmony) avoids SWAP\n"
      "overhead entirely while large heavy-hex devices pay for routing —\n"
      "this is the trade-off the RL agent learns to navigate.\n");
  return 0;
}
