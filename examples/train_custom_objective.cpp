// Trains compilers for two different objectives (expected fidelity vs
// critical depth) and shows how the learned flows differ on the same
// circuit — the paper's "customizable optimization objective" in action.
// Also demonstrates model persistence.
//
//   ./examples/train_custom_objective [model_output_path]

#include <cstdio>
#include <fstream>

#include "bench_suite/benchmarks.hpp"
#include "core/predictor.hpp"
#include "features/features.hpp"

int main(int argc, char** argv) {
  using namespace qrc;

  const auto corpus = bench::benchmark_suite(2, 10, 50);
  const ir::Circuit probe =
      bench::make_benchmark(bench::BenchmarkFamily::kPortfolioQaoa, 6, 3);

  for (const auto objective :
       {reward::RewardKind::kFidelity, reward::RewardKind::kCriticalDepth}) {
    core::PredictorConfig config;
    config.reward = objective;
    config.seed = 21;
    config.ppo.total_timesteps = 12288;
    // Collect rollouts from 4 envs in parallel (deterministic per seed).
    config.num_envs = 4;
    core::Predictor predictor(config);
    std::printf("training objective '%s' (%d parallel envs)...\n",
                reward::reward_name(objective).data(), config.num_envs);
    (void)predictor.train(corpus);

    const auto result = predictor.compile(probe);
    const auto feats = features::extract_features(result.circuit);
    std::printf("  device: %-18s 2q gates: %4d  depth: %4d\n",
                result.device->name().c_str(),
                result.circuit.two_qubit_gate_count(),
                result.circuit.depth());
    std::printf("  fidelity reward:       %.4f\n",
                reward::expected_fidelity(result.circuit, *result.device));
    std::printf("  critical-depth reward: %.4f\n",
                reward::critical_depth_reward(result.circuit));
    std::printf("  supermarq features: comm=%.2f crit=%.2f ent=%.2f "
                "par=%.2f live=%.2f\n\n",
                feats.program_communication, feats.critical_depth,
                feats.entanglement_ratio, feats.parallelism, feats.liveness);

    if (objective == reward::RewardKind::kFidelity && argc > 1) {
      std::ofstream os(argv[1]);
      predictor.save(os);
      std::printf("  model saved to %s\n\n", argv[1]);
    }
  }
  return 0;
}
