// Supporting experiment (not in the paper): validates the analytic
// expected-fidelity reward — the quantity the RL agent maximises — against
// Monte-Carlo trajectory simulation under the same calibrated Pauli error
// model. The proxy matters only through its *ranking* of compiled
// circuits, so the headline number is the rank correlation.

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "baselines/baselines.hpp"
#include "bench_suite/benchmarks.hpp"
#include "device/library.hpp"
#include "noise/noise_sim.hpp"
#include "reward/reward.hpp"

int main() {
  using namespace qrc;

  // A small line device keeps every compiled circuit simulable.
  const device::Device line10("validation_line10", device::Platform::kIBM,
                              device::CouplingMap::line(10), 99);

  std::printf("== Noise validation: analytic fidelity proxy vs Monte-Carlo "
              "==\n");
  std::printf("%-18s %10s %12s %10s\n", "circuit", "analytic", "monte-carlo",
              "std-err");

  std::vector<std::pair<double, double>> points;
  for (const auto family :
       {bench::BenchmarkFamily::kGhz, bench::BenchmarkFamily::kDj,
        bench::BenchmarkFamily::kQft, bench::BenchmarkFamily::kWstate,
        bench::BenchmarkFamily::kVqe, bench::BenchmarkFamily::kQaoa,
        bench::BenchmarkFamily::kGraphState,
        bench::BenchmarkFamily::kQpeExact}) {
    for (const int n : {4, 6, 8}) {
      const auto circuit = bench::make_benchmark(family, n, 1);
      const auto compiled =
          baselines::compile_qiskit_o3_like(circuit, line10, 1);
      const double analytic =
          reward::expected_fidelity(compiled.circuit, line10);
      const auto mc = noise::simulate_noisy_fidelity(compiled.circuit,
                                                     line10, 600, 42);
      std::printf("%-18s %10.4f %12.4f %10.4f\n",
                  compiled.circuit.name().c_str(), analytic, mc.mean,
                  mc.std_err);
      points.emplace_back(analytic, mc.mean);
    }
  }

  // Pearson correlation.
  const auto n = static_cast<double>(points.size());
  double mx = 0.0;
  double my = 0.0;
  for (const auto& [x, y] : points) {
    mx += x;
    my += y;
  }
  mx /= n;
  my /= n;
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (const auto& [x, y] : points) {
    sxy += (x - mx) * (y - my);
    sxx += (x - mx) * (x - mx);
    syy += (y - my) * (y - my);
  }
  const double pearson = sxy / std::sqrt(sxx * syy + 1e-15);

  // Kendall-style pairwise order agreement.
  int concordant = 0;
  int comparable = 0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    for (std::size_t j = i + 1; j < points.size(); ++j) {
      if (std::abs(points[i].first - points[j].first) < 0.01) {
        continue;
      }
      ++comparable;
      if ((points[i].first < points[j].first) ==
          (points[i].second < points[j].second)) {
        ++concordant;
      }
    }
  }
  std::printf("\nPearson r(analytic, monte-carlo) = %.3f over %zu circuits\n",
              pearson, points.size());
  std::printf("pairwise rank agreement = %.1f%% (%d / %d)\n",
              100.0 * concordant / std::max(1, comparable), concordant,
              comparable);
  std::printf("(the proxy consistently *underestimates* the sampled "
              "fidelity because it counts every error event as fatal, "
              "while Pauli errors can act trivially — the ranking, which "
              "drives the RL policy, is what must agree)\n");
  return 0;
}
