// Reproduces Table I of the paper: each of the three trained models
// (fidelity / critical depth / combination) is evaluated under all three
// metrics, averaged over the corpus. The paper reports diagonal dominance:
//
//                        Average result for...
//   Model trained for... Fidelity  Critical depth  Combination
//   Fidelity                 0.48            0.27         0.37
//   Critical depth           0.18            0.47         0.33
//   Combination              0.45            0.33         0.39

#include <cstdio>

#include "experiment_common.hpp"

int main() {
  using namespace qrc;
  using namespace qrc::bench_harness;

  const auto corpus = make_corpus();
  std::printf("== Table I: cross-evaluation of trained models ==\n");
  std::printf("# corpus: %zu circuits\n\n", corpus.size());

  const reward::RewardKind kinds[] = {reward::RewardKind::kFidelity,
                                      reward::RewardKind::kCriticalDepth,
                                      reward::RewardKind::kCombination};

  double table[3][3] = {};
  for (int row = 0; row < 3; ++row) {
    const auto predictor = train_model(kinds[row], corpus,
                                       /*seed=*/29 + static_cast<std::uint64_t>(row));
    // Compile once per circuit, score under every metric.
    for (const auto& circuit : corpus) {
      const auto result = predictor.compile(circuit);
      for (int col = 0; col < 3; ++col) {
        table[row][col] += predictor.evaluate(result, kinds[col]);
      }
    }
    for (int col = 0; col < 3; ++col) {
      table[row][col] /= static_cast<double>(corpus.size());
    }
  }

  std::printf("\n%-26s %10s %16s %13s\n", "Model trained for...", "Fidelity",
              "Critical depth", "Combination");
  const char* row_names[3] = {"Fidelity", "Critical depth", "Combination"};
  for (int row = 0; row < 3; ++row) {
    std::printf("%-26s %10.3f %16.3f %13.3f\n", row_names[row], table[row][0],
                table[row][1], table[row][2]);
  }

  // Shape check: each metric's best model should be the one trained for it.
  std::printf("\nshape check (paper: diagonal dominance per column):\n");
  for (int col = 0; col < 3; ++col) {
    int best = 0;
    for (int row = 1; row < 3; ++row) {
      if (table[row][col] > table[best][col]) {
        best = row;
      }
    }
    std::printf("  best model for %-15s : %-15s %s\n", row_names[col],
                row_names[best],
                best == col ? "(matches paper)" : "(differs from paper)");
  }
  return 0;
}
