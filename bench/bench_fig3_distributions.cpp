// Reproduces Fig. 3a / 3b / 3c of the paper: distributions of the absolute
// reward difference between the RL-optimized compiler and the Qiskit-O3 /
// TKET-O2 baselines (compiled to ibmq_washington), for the three reward
// functions. One model is trained per objective, evaluated on the same
// corpus it was trained on (as in the paper).
//
// Paper reference values: RL outperforms Qiskit/TKET in 73%/80% (fidelity),
// 84%/86% (critical depth) and 75%/78.5% (combination) of cases.

#include <cstdio>

#include "experiment_common.hpp"

int main() {
  using namespace qrc;
  using namespace qrc::bench_harness;

  const auto corpus = make_corpus();
  std::printf("== Fig. 3a/3b/3c: reward-difference distributions ==\n");
  std::printf("# corpus: %zu circuits (2-20 qubits, 22 families)\n",
              corpus.size());

  const struct {
    reward::RewardKind kind;
    const char* figure;
  } experiments[] = {
      {reward::RewardKind::kFidelity, "Fig. 3a (fidelity)"},
      {reward::RewardKind::kCriticalDepth, "Fig. 3b (critical depth)"},
      {reward::RewardKind::kCombination, "Fig. 3c (combination)"},
  };

  for (const auto& exp : experiments) {
    std::printf("\n---- %s ----\n", exp.figure);
    const auto predictor = train_model(exp.kind, corpus, /*seed=*/17);
    const auto records = evaluate_corpus(predictor, exp.kind, corpus);
    int fallbacks = 0;
    for (const auto& r : records) {
      if (r.rl_fallback) {
        ++fallbacks;
      }
    }
    print_difference_histogram(records, reward::reward_name(exp.kind).data());
    if (fallbacks > 0) {
      std::printf("  (policy fallback used on %d/%zu circuits)\n", fallbacks,
                  records.size());
    }
  }
  return 0;
}
