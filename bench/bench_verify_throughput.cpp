// Equivalence-checker throughput bench: measures checks/sec per tier and
// records how a mixed compiled workload dispatches across the tiers.
//
// Three corpora exercise the tiers in isolation:
//   - clifford: random Clifford pairs (resynthesised via the tableau) at
//     16-48 qubits — tableau comparison, no statevector.
//   - miter: optimised non-Clifford pairs at 5-8 qubits — the alternating
//     Choi miter (exact).
//   - stimuli: non-Clifford pairs at 12-14 qubits (above the miter cap) —
//     shared random stimuli.
// A fourth, mixed corpus runs routed benchmark circuits through
// verify_compilation and reports the tier-dispatch histogram.
//
// Writes BENCH_verify_throughput.json with
// clifford_checks_per_sec / miter_checks_per_sec / stimuli_checks_per_sec
// / tier_dispatch_histogram / total_checks.
//
// Knobs: QRC_VERIFY_BENCH_COUNT (default 12) sizes each corpus.

#include <chrono>
#include <cstdio>
#include <map>
#include <random>
#include <string>
#include <vector>

#include "bench_suite/benchmarks.hpp"
#include "clifford/tableau.hpp"
#include "core/predictor.hpp"
#include "device/library.hpp"
#include "experiment_common.hpp"
#include "la/complex.hpp"
#include "passes/opt/composite.hpp"
#include "tools/verify_fuzz_common.hpp"
#include "verify/equivalence.hpp"

namespace {

using namespace qrc;
using Clock = std::chrono::steady_clock;

ir::Circuit random_clifford(int n, int length, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> qpick(0, n - 1);
  ir::Circuit c(n, "clifford");
  for (int i = 0; i < length; ++i) {
    const int q = qpick(rng);
    int q2 = qpick(rng);
    while (q2 == q) {
      q2 = qpick(rng);
    }
    switch (std::uniform_int_distribution<int>(0, 4)(rng)) {
      case 0: c.h(q); break;
      case 1: c.s(q); break;
      case 2: c.cx(q, q2); break;
      case 3: c.x(q); break;
      default: c.cz(q, q2); break;
    }
  }
  return c;
}

ir::Circuit random_dense(int n, int length, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> ang(-la::kPi, la::kPi);
  std::uniform_int_distribution<int> qpick(0, n - 1);
  ir::Circuit c(n, "dense");
  for (int i = 0; i < length; ++i) {
    const int q = qpick(rng);
    int q2 = qpick(rng);
    while (q2 == q) {
      q2 = qpick(rng);
    }
    switch (std::uniform_int_distribution<int>(0, 4)(rng)) {
      case 0: c.h(q); break;
      case 1: c.t(q); break;
      case 2: c.cx(q, q2); break;
      case 3: c.ry(ang(rng), q); break;
      default: c.rzz(ang(rng), q, q2); break;
    }
  }
  return c;
}

struct TierRun {
  double checks_per_sec = 0.0;
  int checks = 0;
};

TierRun run_pairs(const verify::EquivalenceChecker& checker,
                  const std::vector<std::pair<ir::Circuit, ir::Circuit>>& pairs,
                  verify::Method expected_method) {
  const auto start = Clock::now();
  int ok = 0;
  for (const auto& [a, b] : pairs) {
    const auto result = checker.check(a, b);
    if (result.verdict == verify::Verdict::kEquivalent &&
        result.method == expected_method) {
      ++ok;
    } else {
      std::fprintf(stderr, "unexpected verdict %s via %s: %s\n",
                   verify::verdict_name(result.verdict).data(),
                   verify::method_name(result.method).data(),
                   result.detail.c_str());
    }
  }
  TierRun out;
  out.checks = static_cast<int>(pairs.size());
  const double secs =
      std::chrono::duration<double>(Clock::now() - start).count();
  out.checks_per_sec = static_cast<double>(out.checks) / std::max(secs, 1e-12);
  return out;
}

}  // namespace

int main() {
  const int count =
      std::max(4, bench_harness::env_int("QRC_VERIFY_BENCH_COUNT", 12));
  const verify::EquivalenceChecker checker;

  // -- clifford corpus ------------------------------------------------------
  std::vector<std::pair<ir::Circuit, ir::Circuit>> clifford_pairs;
  for (int i = 0; i < count; ++i) {
    const int n = 16 + (i * 8) % 33;  // 16..48 qubits
    const ir::Circuit a =
        random_clifford(n, 12 * n, 100 + static_cast<std::uint64_t>(i));
    const auto tableau = clifford::Tableau::from_circuit(a);
    clifford_pairs.emplace_back(a, tableau->to_circuit());
  }
  const TierRun clifford_run = run_pairs(checker, clifford_pairs,
                                         verify::Method::kCliffordTableau);
  std::printf("clifford tier: %d checks (16-48 qubits), %.1f checks/sec\n",
              clifford_run.checks, clifford_run.checks_per_sec);

  // -- miter corpus ---------------------------------------------------------
  std::vector<std::pair<ir::Circuit, ir::Circuit>> miter_pairs;
  const passes::FullPeepholeOptimise optimiser;
  for (int i = 0; i < count; ++i) {
    const int n = 5 + i % 4;  // 5..8 qubits
    ir::Circuit a = random_dense(n, 10 * n, 200 + static_cast<std::uint64_t>(i));
    ir::Circuit b = a;
    (void)optimiser.run(b, {});
    miter_pairs.emplace_back(std::move(a), std::move(b));
  }
  const TierRun miter_run =
      run_pairs(checker, miter_pairs, verify::Method::kAlternatingMiter);
  std::printf("miter tier:    %d checks (5-8 qubits), %.1f checks/sec\n",
              miter_run.checks, miter_run.checks_per_sec);

  // -- stimuli corpus -------------------------------------------------------
  std::vector<std::pair<ir::Circuit, ir::Circuit>> stimuli_pairs;
  for (int i = 0; i < count; ++i) {
    const int n = 12 + i % 3;  // 12..14: above the miter cap
    ir::Circuit a = random_dense(n, 6 * n, 300 + static_cast<std::uint64_t>(i));
    ir::Circuit b = a;
    (void)optimiser.run(b, {});
    stimuli_pairs.emplace_back(std::move(a), std::move(b));
  }
  const TierRun stimuli_run =
      run_pairs(checker, stimuli_pairs, verify::Method::kRandomStimuli);
  std::printf("stimuli tier:  %d checks (12-14 qubits), %.1f checks/sec\n",
              stimuli_run.checks, stimuli_run.checks_per_sec);

  // -- mixed compiled workload: tier dispatch ------------------------------
  // Same pipeline as the fuzz sweep (verify_fuzz_common.hpp), so the
  // CI-asserted dispatch histogram measures the workload the sweep runs.
  std::map<std::string, int> dispatch;
  int mixed = 0;
  const auto& families = bench::all_families();
  const auto& devices = device::all_devices();
  const auto mixed_start = Clock::now();
  for (int i = 0; i < count; ++i) {
    const auto family = families[static_cast<std::size_t>(i) % families.size()];
    const int n = 3 + i % 6;
    const auto* dev = devices[static_cast<std::size_t>(i) % devices.size()];
    if (n > dev->num_qubits()) {
      continue;
    }
    const ir::Circuit circuit = bench::make_benchmark(family, n, 40 + i);
    const auto result = verify_fuzz::run_full_pipeline(circuit, *dev, 1);
    const auto verdict = core::verify_compilation(circuit, result);
    ++dispatch[std::string(verify::method_name(verdict.method))];
    ++mixed;
  }
  const double mixed_secs =
      std::chrono::duration<double>(Clock::now() - mixed_start).count();
  std::printf("mixed routed workload: %d compile+verify in %.2fs, dispatch:",
              mixed, mixed_secs);
  for (const auto& [method, n] : dispatch) {
    std::printf(" %s:%d", method.c_str(), n);
  }
  std::printf("\n");

  const int total = clifford_run.checks + miter_run.checks +
                    stimuli_run.checks + mixed;
  std::FILE* json = std::fopen("BENCH_verify_throughput.json", "w");
  if (json != nullptr) {
    std::fprintf(json, "{\n");
    bench_harness::write_meta(json);
    std::fprintf(json,
                 "  \"bench\": \"verify_throughput\",\n"
                 "  \"total_checks\": %d,\n"
                 "  \"clifford_checks_per_sec\": %.2f,\n"
                 "  \"miter_checks_per_sec\": %.2f,\n"
                 "  \"stimuli_checks_per_sec\": %.2f,\n"
                 "  \"tier_dispatch_histogram\": {",
                 total, clifford_run.checks_per_sec,
                 miter_run.checks_per_sec, stimuli_run.checks_per_sec);
    bool first = true;
    for (const auto& [method, n] : dispatch) {
      std::fprintf(json, "%s\"%s\": %d", first ? "" : ", ", method.c_str(),
                   n);
      first = false;
    }
    std::fprintf(json, "}\n}\n");
    std::fclose(json);
    std::printf("results written to BENCH_verify_throughput.json\n");
  }
  return 0;
}
