/// \file experiment_common.hpp
/// \brief Shared harness for the paper-reproduction benches: corpus
///        construction, model training, per-circuit evaluation against the
///        baselines, and table/histogram printers.
///
/// Environment knobs:
///   QRC_TRAIN_STEPS      PPO timesteps per model (default 100000 = paper scale)
///   QRC_EVAL_COUNT       evaluation circuits     (default 200, as the paper)
///   QRC_PAPER_SCALE      =1 forces 100000 timesteps regardless of the above
///   QRC_NUM_ENVS         parallel rollout envs   (default 1 = serial path)
///   QRC_ROLLOUT_WORKERS  env-stepping threads    (default: one per env)
#pragma once

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <string>
#include <thread>
#include <vector>

#include "baselines/baselines.hpp"
#include "bench_suite/benchmarks.hpp"
#include "core/predictor.hpp"
#include "device/library.hpp"
#include "obs/build_info.hpp"
#include "reward/reward.hpp"
#include "rl/mlp.hpp"

namespace qrc::bench_harness {

/// Provenance block stamped into every BENCH_*.json: which build, on which
/// machine, when — so archived result files stay comparable across runs.
inline std::string meta_json() {
  const auto info = obs::build_info();

  char timestamp[32] = "unknown";
  const std::time_t now = std::time(nullptr);
  std::tm tm{};
  if (gmtime_r(&now, &tm) != nullptr) {
    std::strftime(timestamp, sizeof(timestamp), "%Y-%m-%dT%H:%M:%SZ", &tm);
  }

  char hostname[256] = "unknown";
  if (gethostname(hostname, sizeof(hostname)) != 0) {
    std::strcpy(hostname, "unknown");
  }
  hostname[sizeof(hostname) - 1] = '\0';

  char out[512];
  std::snprintf(out, sizeof(out),
                "{\"git_sha\": \"%.*s\", \"build_type\": \"%.*s\", "
                "\"compiler\": \"%.*s\", \"timestamp_utc\": \"%s\", "
                "\"hostname\": \"%s\", \"hardware_threads\": %u, "
                "\"simd_kernel\": \"%s\"}",
                static_cast<int>(info.git_sha.size()), info.git_sha.data(),
                static_cast<int>(info.build_type.size()),
                info.build_type.data(),
                static_cast<int>(info.compiler.size()), info.compiler.data(),
                timestamp, hostname, std::thread::hardware_concurrency(),
                rl::simd_kernel_name());
  return out;
}

/// Writes the shared `"meta"` member right after a BENCH_*.json writer's
/// opening brace (callers emit `{\n` first, then this, then their fields).
inline void write_meta(std::FILE* json) {
  std::fprintf(json, "  \"meta\": %s,\n", meta_json().c_str());
}

inline int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') {
    return fallback;
  }
  return std::atoi(v);
}

inline int train_steps() {
  if (env_int("QRC_PAPER_SCALE", 0) == 1) {
    return 100000;
  }
  return env_int("QRC_TRAIN_STEPS", 100000);
}

inline int eval_count() { return env_int("QRC_EVAL_COUNT", 200); }

inline int num_envs() { return env_int("QRC_NUM_ENVS", 1); }

inline int rollout_workers() { return env_int("QRC_ROLLOUT_WORKERS", 0); }

/// The paper's corpus: circuits from all 22 families, 2..20 qubits.
inline std::vector<ir::Circuit> make_corpus() {
  return bench::benchmark_suite(2, 20, eval_count());
}

/// One model per reward function, trained on the corpus (the paper trains
/// and evaluates on the same 200 circuits).
inline core::Predictor train_model(reward::RewardKind kind,
                                   const std::vector<ir::Circuit>& corpus,
                                   std::uint64_t seed) {
  core::PredictorConfig config;
  config.reward = kind;
  config.seed = seed;
  config.ppo.total_timesteps = train_steps();
  config.ppo.steps_per_update = 2048;
  config.num_envs = num_envs();
  config.rollout_workers = rollout_workers();
  core::Predictor predictor(config);
  std::printf("# training %s model (%d timesteps, %d env(s))...\n",
              reward::reward_name(kind).data(), train_steps(), num_envs());
  std::fflush(stdout);
  const auto stats = predictor.train(corpus);
  std::printf("# trained: final mean episode reward %.3f over %zu updates\n",
              stats.back().mean_episode_reward, stats.size());
  return predictor;
}

/// Per-circuit evaluation record: rewards of the three compilers under one
/// metric. Baselines are compiled to ibmq_washington per Section IV-B.
struct EvalRecord {
  std::string name;
  std::string family;
  int qubits = 0;
  double rl = 0.0;
  double qiskit = 0.0;
  double tket = 0.0;
  bool rl_fallback = false;
};

inline std::string family_of(const std::string& circuit_name) {
  const auto pos = circuit_name.rfind('_');
  return pos == std::string::npos ? circuit_name : circuit_name.substr(0, pos);
}

inline std::vector<EvalRecord> evaluate_corpus(
    const core::Predictor& predictor, reward::RewardKind metric,
    const std::vector<ir::Circuit>& corpus) {
  const auto& washington =
      device::get_device(device::DeviceId::kIbmqWashington);
  std::vector<EvalRecord> records;
  records.reserve(corpus.size());
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    const auto& circuit = corpus[i];
    EvalRecord rec;
    rec.name = circuit.name();
    rec.family = family_of(circuit.name());
    rec.qubits = circuit.num_qubits();

    const auto rl = predictor.compile(circuit);
    rec.rl = predictor.evaluate(rl, metric);
    rec.rl_fallback = rl.used_fallback;

    const auto qiskit = baselines::compile_qiskit_o3_like(
        circuit, washington, 1 + static_cast<std::uint64_t>(i));
    rec.qiskit =
        reward::compute_reward(metric, qiskit.circuit, washington);

    const auto tket = baselines::compile_tket_o2_like(
        circuit, washington, 1 + static_cast<std::uint64_t>(i));
    rec.tket = reward::compute_reward(metric, tket.circuit, washington);

    records.push_back(std::move(rec));
  }
  return records;
}

/// Fig. 3a-c style histogram of reward differences.
inline void print_difference_histogram(const std::vector<EvalRecord>& records,
                                       const char* metric_name) {
  constexpr double kLo = -0.7;
  constexpr double kHi = 0.7;
  constexpr int kBins = 28;
  std::vector<int> vs_qiskit(kBins, 0);
  std::vector<int> vs_tket(kBins, 0);
  const auto bin_of = [&](double d) {
    const double clamped = std::min(kHi - 1e-9, std::max(kLo, d));
    return static_cast<int>((clamped - kLo) / (kHi - kLo) * kBins);
  };
  int better_q = 0;
  int better_t = 0;
  for (const auto& r : records) {
    ++vs_qiskit[static_cast<std::size_t>(bin_of(r.rl - r.qiskit))];
    ++vs_tket[static_cast<std::size_t>(bin_of(r.rl - r.tket))];
    if (r.rl >= r.qiskit - 1e-12) {
      ++better_q;
    }
    if (r.rl >= r.tket - 1e-12) {
      ++better_t;
    }
  }
  const double n = static_cast<double>(records.size());
  std::printf("\n  absolute %s reward difference (RL - baseline):\n",
              metric_name);
  std::printf("  %-16s %-28s %-28s\n", "bin", "vs qiskit-O3", "vs tket-O2");
  for (int b = 0; b < kBins; ++b) {
    const double lo = kLo + (kHi - kLo) * b / kBins;
    const double hi = lo + (kHi - kLo) / kBins;
    const double fq = vs_qiskit[static_cast<std::size_t>(b)] / n;
    const double ft = vs_tket[static_cast<std::size_t>(b)] / n;
    if (fq == 0.0 && ft == 0.0) {
      continue;
    }
    std::string bar_q(static_cast<std::size_t>(fq * 80.0), '#');
    std::string bar_t(static_cast<std::size_t>(ft * 80.0), '*');
    std::printf("  [%+.2f,%+.2f)  %5.3f %-22s %5.3f %-22s\n", lo, hi, fq,
                bar_q.c_str(), ft, bar_t.c_str());
  }
  std::printf("  -> RL >= qiskit-O3 in %.1f%% of cases (paper shape: majority)\n",
              100.0 * better_q / n);
  std::printf("  -> RL >= tket-O2   in %.1f%% of cases\n",
              100.0 * better_t / n);
}

/// Fig. 3d-f style per-family average differences.
inline void print_per_family_averages(const std::vector<EvalRecord>& records,
                                      const char* metric_name) {
  std::printf("\n  average %s reward difference per benchmark family:\n",
              metric_name);
  std::printf("  %-16s %8s %12s %12s\n", "benchmark", "count", "vs qiskit",
              "vs tket");
  for (const auto family : bench::all_families()) {
    const std::string fname(bench::family_name(family));
    double dq = 0.0;
    double dt = 0.0;
    int count = 0;
    for (const auto& r : records) {
      if (r.family == fname) {
        dq += r.rl - r.qiskit;
        dt += r.rl - r.tket;
        ++count;
      }
    }
    if (count == 0) {
      continue;
    }
    std::printf("  %-16s %8d %+12.4f %+12.4f\n", fname.c_str(), count,
                dq / count, dt / count);
  }
  double dq = 0.0;
  double dt = 0.0;
  for (const auto& r : records) {
    dq += r.rl - r.qiskit;
    dt += r.rl - r.tket;
  }
  std::printf("  %-16s %8zu %+12.4f %+12.4f   (paper: positive means)\n",
              "OVERALL", records.size(), dq / static_cast<double>(records.size()),
              dt / static_cast<double>(records.size()));
}

}  // namespace qrc::bench_harness
