// Hot-kernel microbench: head-to-head throughput of the data-oriented
// kernel rewrites against their straightforward predecessors, on identical
// work.
//
//   - MLP dense forward: rows/sec of the scalar reference path
//     (Mlp::forward per row, portable row-major kernel) vs the vectorized
//     batched path (Mlp::forward_batch, single thread — no pool, so the
//     delta is pure kernel).
//   - Tableau row ops: (gate, row) updates/sec of a byte-per-cell
//     vector<vector<bool>> reference vs the uint64_t bitplane Tableau on
//     the same gate sequence.
//   - Search child expansion: CompilationState copies/sec with the op
//     buffer eagerly deep-copied per child vs copy-on-write sharing.
//
// Knobs: QRC_KERNEL_MLP_ROUNDS (default 200 batches of 256 rows),
// QRC_KERNEL_TABLEAU_GATES (default 20000), QRC_KERNEL_EXPANSIONS
// (default 200000), QRC_SIMD to pin the MLP kernel. Results are printed
// and written to BENCH_kernels.json in the working directory.

#include <chrono>
#include <cstdio>
#include <random>
#include <span>
#include <vector>

#include "experiment_common.hpp"
#include "clifford/tableau.hpp"
#include "core/compilation_env.hpp"
#include "ir/circuit.hpp"
#include "rl/mlp.hpp"

namespace {

using namespace qrc;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// ------------------------------------------------------------- MLP kernel --

struct MlpResult {
  double scalar_rows_per_sec = 0.0;
  double simd_rows_per_sec = 0.0;
  double speedup = 0.0;
};

MlpResult measure_mlp(int rounds) {
  const int obs = 64;
  const int out = 30;
  const int batch = 256;
  const rl::Mlp net({obs, 64, 64, out}, 17);
  std::mt19937_64 rng(23);
  std::uniform_real_distribution<double> uniform(-1.0, 1.0);
  std::vector<double> inputs(static_cast<std::size_t>(batch) * obs);
  for (double& v : inputs) {
    v = uniform(rng);
  }

  MlpResult res;
  double sink = 0.0;
  auto start = Clock::now();
  for (int r = 0; r < rounds; ++r) {
    for (int i = 0; i < batch; ++i) {
      const auto row = std::span<const double>(inputs).subspan(
          static_cast<std::size_t>(i) * obs, obs);
      sink += net.forward(row)[0];
    }
  }
  res.scalar_rows_per_sec =
      static_cast<double>(rounds) * batch / std::max(seconds_since(start),
                                                     1e-12);

  std::vector<double> outputs;
  start = Clock::now();
  for (int r = 0; r < rounds; ++r) {
    net.forward_batch(inputs, batch, outputs);
    sink += outputs[0];
  }
  res.simd_rows_per_sec =
      static_cast<double>(rounds) * batch / std::max(seconds_since(start),
                                                     1e-12);
  res.speedup = res.simd_rows_per_sec / res.scalar_rows_per_sec;
  if (sink == 12345.6789) {  // defeat dead-code elimination
    std::printf("#\n");
  }
  return res;
}

// --------------------------------------------------------- tableau kernel --

/// Byte-per-cell stabilizer tableau with the per-row update loops the
/// library used before the bitplane layout — the baseline side of the
/// head-to-head.
struct ByteTableau {
  int n;
  std::vector<std::vector<bool>> x, z;
  std::vector<bool> r;

  explicit ByteTableau(int num_qubits) : n(num_qubits) {
    const auto rows = static_cast<std::size_t>(2 * n);
    x.assign(rows, std::vector<bool>(static_cast<std::size_t>(n), false));
    z.assign(rows, std::vector<bool>(static_cast<std::size_t>(n), false));
    r.assign(rows, false);
    for (int i = 0; i < n; ++i) {
      x[static_cast<std::size_t>(i)][static_cast<std::size_t>(i)] = true;
      z[static_cast<std::size_t>(n + i)][static_cast<std::size_t>(i)] = true;
    }
  }

  void h(int q) {
    const auto c = static_cast<std::size_t>(q);
    for (std::size_t row = 0; row < x.size(); ++row) {
      const bool xv = x[row][c];
      const bool zv = z[row][c];
      r[row] = r[row] ^ (xv && zv);
      x[row][c] = zv;
      z[row][c] = xv;
    }
  }
  void s(int q) {
    const auto c = static_cast<std::size_t>(q);
    for (std::size_t row = 0; row < x.size(); ++row) {
      const bool xv = x[row][c];
      const bool zv = z[row][c];
      r[row] = r[row] ^ (xv && zv);
      z[row][c] = zv ^ xv;
    }
  }
  void cx(int cq, int tq) {
    const auto cc = static_cast<std::size_t>(cq);
    const auto ct = static_cast<std::size_t>(tq);
    for (std::size_t row = 0; row < x.size(); ++row) {
      const bool xc = x[row][cc];
      const bool zc = z[row][cc];
      const bool xt = x[row][ct];
      const bool zt = z[row][ct];
      r[row] = r[row] ^ (xc && zt && (xt == zc));
      x[row][ct] = xt ^ xc;
      z[row][cc] = zc ^ zt;
    }
  }
};

struct TableauResult {
  double byte_row_ops_per_sec = 0.0;
  double bitplane_row_ops_per_sec = 0.0;
  double speedup = 0.0;
  bool agree = true;
};

TableauResult measure_tableau(int gates) {
  const int n = 64;  // 128 rows = 2 words per plane
  // Pre-draw the gate sequence so both sides replay identical work.
  struct Gate { int kind; int a; int b; };
  std::vector<Gate> seq(static_cast<std::size_t>(gates));
  std::mt19937_64 rng(4711);
  for (auto& g : seq) {
    g.kind = static_cast<int>(rng() % 3);
    g.a = static_cast<int>(rng() % n);
    g.b = static_cast<int>(rng() % n);
    if (g.b == g.a) {
      g.b = (g.a + 1) % n;
    }
  }

  TableauResult res;
  ByteTableau byte_t(n);
  auto start = Clock::now();
  for (const auto& g : seq) {
    switch (g.kind) {
      case 0: byte_t.h(g.a); break;
      case 1: byte_t.s(g.a); break;
      default: byte_t.cx(g.a, g.b); break;
    }
  }
  const double byte_s = seconds_since(start);

  clifford::Tableau bit_t(n);
  start = Clock::now();
  for (const auto& g : seq) {
    switch (g.kind) {
      case 0: bit_t.apply_h(g.a); break;
      case 1: bit_t.apply_s(g.a); break;
      default: bit_t.apply_cx(g.a, g.b); break;
    }
  }
  const double bit_s = seconds_since(start);

  // Both sides must have computed the same tableau — a benchmark of a
  // wrong kernel is worthless.
  for (int row = 0; row < 2 * n && res.agree; ++row) {
    res.agree = bit_t.r(row) == byte_t.r[static_cast<std::size_t>(row)];
    for (int col = 0; col < n && res.agree; ++col) {
      res.agree =
          bit_t.x(row, col) == byte_t.x[static_cast<std::size_t>(row)]
                                       [static_cast<std::size_t>(col)] &&
          bit_t.z(row, col) == byte_t.z[static_cast<std::size_t>(row)]
                                       [static_cast<std::size_t>(col)];
    }
  }

  const double row_ops = static_cast<double>(gates) * 2.0 * n;
  res.byte_row_ops_per_sec = row_ops / std::max(byte_s, 1e-12);
  res.bitplane_row_ops_per_sec = row_ops / std::max(bit_s, 1e-12);
  res.speedup = res.bitplane_row_ops_per_sec / res.byte_row_ops_per_sec;
  return res;
}

// -------------------------------------------------------- child expansion --

struct ExpandResult {
  double deepcopy_per_sec = 0.0;
  double cow_per_sec = 0.0;
  double speedup = 0.0;
};

ExpandResult measure_expansion(int expansions) {
  // A routed-scale circuit: expansion cost is dominated by the op list.
  ir::Circuit big(16, "expand_probe");
  std::mt19937_64 rng(99);
  for (int i = 0; i < 2000; ++i) {
    const int q = static_cast<int>(rng() % 16);
    const int p = (q + 1 + static_cast<int>(rng() % 15)) % 16;
    switch (rng() % 3) {
      case 0: big.h(q); break;
      case 1: big.rz(0.25 * static_cast<double>(rng() % 8), q); break;
      default: big.cx(q, p); break;
    }
  }
  core::CompilationState parent;
  parent.circuit = big;

  ExpandResult res;
  std::size_t sink = 0;
  // Deep copy: what expansion cost before COW — every child materializes
  // a private op buffer.
  auto start = Clock::now();
  for (int i = 0; i < expansions; ++i) {
    core::CompilationState child = parent;
    sink += child.circuit.mutable_ops().size();
  }
  res.deepcopy_per_sec =
      static_cast<double>(expansions) / std::max(seconds_since(start), 1e-12);

  // COW: the copy every beam/MCTS candidate pays before its pass runs.
  start = Clock::now();
  for (int i = 0; i < expansions; ++i) {
    core::CompilationState child = parent;
    sink += child.circuit.size();
  }
  res.cow_per_sec =
      static_cast<double>(expansions) / std::max(seconds_since(start), 1e-12);
  res.speedup = res.cow_per_sec / res.deepcopy_per_sec;
  if (sink == 1) {
    std::printf("#\n");
  }
  return res;
}

}  // namespace

int main() {
  const int mlp_rounds = bench_harness::env_int("QRC_KERNEL_MLP_ROUNDS", 200);
  const int tableau_gates =
      bench_harness::env_int("QRC_KERNEL_TABLEAU_GATES", 20000);
  const int expansions =
      bench_harness::env_int("QRC_KERNEL_EXPANSIONS", 200000);

  std::printf("# hot-kernel microbench (mlp kernel: %s)\n",
              rl::simd_kernel_name());

  const MlpResult mlp = measure_mlp(mlp_rounds);
  std::printf("  mlp forward:   scalar %12.0f rows/sec, %s %12.0f rows/sec "
              "-> %.2fx\n",
              mlp.scalar_rows_per_sec, rl::simd_kernel_name(),
              mlp.simd_rows_per_sec, mlp.speedup);

  const TableauResult tab = measure_tableau(tableau_gates);
  std::printf("  tableau (n=64): byte %11.0f row-ops/sec, bitplane %11.0f "
              "row-ops/sec -> %.2fx%s\n",
              tab.byte_row_ops_per_sec, tab.bitplane_row_ops_per_sec,
              tab.speedup, tab.agree ? "" : "  [MISMATCH]");

  const ExpandResult exp = measure_expansion(expansions);
  std::printf("  expansion (2000 ops): deep-copy %10.0f children/sec, COW "
              "%10.0f children/sec -> %.1fx\n",
              exp.deepcopy_per_sec, exp.cow_per_sec, exp.speedup);

  std::FILE* json = std::fopen("BENCH_kernels.json", "w");
  if (json != nullptr) {
    std::fprintf(json, "{\n");
    bench_harness::write_meta(json);
    std::fprintf(
        json,
        "  \"bench\": \"kernels\",\n"
        "  \"mlp_kernel\": \"%s\",\n"
        "  \"mlp_rows_per_sec_scalar\": %.1f,\n"
        "  \"mlp_rows_per_sec_simd\": %.1f,\n"
        "  \"mlp_simd_speedup\": %.3f,\n"
        "  \"tableau_row_ops_per_sec_byte\": %.1f,\n"
        "  \"tableau_row_ops_per_sec_bitplane\": %.1f,\n"
        "  \"tableau_bitplane_speedup\": %.3f,\n"
        "  \"tableau_kernels_agree\": %s,\n"
        "  \"expand_per_sec_deepcopy\": %.1f,\n"
        "  \"expand_per_sec_cow\": %.1f,\n"
        "  \"expansion_cow_speedup\": %.3f\n}\n",
        rl::simd_kernel_name(), mlp.scalar_rows_per_sec,
        mlp.simd_rows_per_sec, mlp.speedup, tab.byte_row_ops_per_sec,
        tab.bitplane_row_ops_per_sec, tab.speedup,
        tab.agree ? "true" : "false", exp.deepcopy_per_sec, exp.cow_per_sec,
        exp.speedup);
    std::fclose(json);
    std::printf("  results written to BENCH_kernels.json\n");
  }
  return tab.agree ? 0 : 1;
}
