// Compile-service throughput bench: measures the micro-batching scheduler
// end to end. Two small models (fidelity + depth objectives) are trained,
// a request mix (every circuit requested several times, alternating
// models) is replayed twice against fresh services — once single-stream
// (submit, wait, repeat: no batching possible) and once from concurrent
// client threads (requests fuse into batched policy rollouts and repeats
// hit the LRU cache) — and the results are printed and written to
// BENCH_service_throughput.json: requests/sec, p50/p99 latency, the
// batch-size histogram, cache hit rate, and the concurrent-vs-single
// speedup (>= 1.0 expected on multi-core hosts; on a single hardware
// thread the two collapse to parity by construction).
//
// Knobs (see experiment_common.hpp): QRC_TRAIN_STEPS (default 4000) sizes
// model training, QRC_EVAL_COUNT (default 16) the circuit corpus,
// QRC_SERVE_CLIENTS (default 4) the concurrent client threads,
// QRC_SERVE_REPEAT (default 3) how often each circuit is requested,
// QRC_SERVE_MAX_BATCH / QRC_SERVE_MAX_WAIT_US the scheduler window.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "experiment_common.hpp"
#include "service/compile_service.hpp"

namespace {

using namespace qrc;
using Clock = std::chrono::steady_clock;

struct Request {
  std::string model;
  const ir::Circuit* circuit = nullptr;
};

struct RunResult {
  double seconds = 0.0;
  double requests_per_sec = 0.0;
  std::int64_t p50_latency_us = 0;
  std::int64_t p99_latency_us = 0;
  service::ServiceStats stats;
};

std::int64_t percentile(std::vector<std::int64_t>& sorted, double p) {
  if (sorted.empty()) {
    return 0;
  }
  const auto rank = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) / 100.0 + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

core::Predictor train_small_model(reward::RewardKind kind,
                                  const std::vector<ir::Circuit>& corpus) {
  core::PredictorConfig config;
  config.reward = kind;
  config.seed = 17;
  config.ppo.total_timesteps =
      bench_harness::env_int("QRC_TRAIN_STEPS", 4000);
  config.ppo.steps_per_update = 512;
  config.ppo.hidden_sizes = {32};
  config.num_envs = bench_harness::num_envs();
  config.rollout_workers = bench_harness::rollout_workers();
  core::Predictor predictor(config);
  std::printf("# training '%s' model (%d timesteps)...\n",
              reward::reward_name(kind).data(),
              config.ppo.total_timesteps);
  std::fflush(stdout);
  (void)predictor.train(corpus);
  return predictor;
}

/// Replays the request waves and reports wall time plus service-side
/// latencies. `clients` == 1 submits synchronously (single-stream
/// baseline: no batching possible); more clients submit their shard of a
/// wave without waiting, so concurrent requests fuse into batches. Waves
/// are separated by a barrier — repeats of a circuit in a later wave hit
/// the result cache instead of deduping inside one batch.
RunResult run(service::CompileService& svc,
              const std::vector<std::vector<Request>>& waves, int clients) {
  std::vector<std::int64_t> latencies;
  const auto start = Clock::now();
  for (const auto& wave : waves) {
    if (clients <= 1) {
      for (const Request& request : wave) {
        latencies.push_back(
            svc.compile(request.model, *request.circuit).latency_us);
      }
      continue;
    }
    std::vector<std::int64_t> wave_latencies(wave.size());
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(clients));
    for (int t = 0; t < clients; ++t) {
      threads.emplace_back([&, t] {
        std::vector<std::pair<std::size_t,
                              std::future<service::ServiceResponse>>>
            inflight;
        for (std::size_t i = static_cast<std::size_t>(t); i < wave.size();
             i += static_cast<std::size_t>(clients)) {
          inflight.emplace_back(
              i, svc.submit(std::to_string(i), wave[i].model,
                            *wave[i].circuit));
        }
        for (auto& [i, future] : inflight) {
          wave_latencies[i] = future.get().latency_us;
        }
      });
    }
    for (auto& thread : threads) {
      thread.join();
    }
    latencies.insert(latencies.end(), wave_latencies.begin(),
                     wave_latencies.end());
  }
  RunResult out;
  out.seconds = std::chrono::duration<double>(Clock::now() - start).count();
  out.requests_per_sec =
      static_cast<double>(latencies.size()) / std::max(out.seconds, 1e-12);
  std::sort(latencies.begin(), latencies.end());
  out.p50_latency_us = percentile(latencies, 50.0);
  out.p99_latency_us = percentile(latencies, 99.0);
  out.stats = svc.stats();
  return out;
}

}  // namespace

int main() {
  const int corpus_size =
      std::max(4, bench_harness::env_int("QRC_EVAL_COUNT", 16));
  const int clients =
      std::max(2, bench_harness::env_int("QRC_SERVE_CLIENTS", 4));
  const int repeat =
      std::max(1, bench_harness::env_int("QRC_SERVE_REPEAT", 3));
  const auto corpus = bench::benchmark_suite(2, 8, corpus_size);

  service::ServiceConfig config;
  config.max_batch = bench_harness::env_int("QRC_SERVE_MAX_BATCH", 16);
  config.max_wait_us =
      bench_harness::env_int("QRC_SERVE_MAX_WAIT_US", 2000);
  config.cache_entries = 512;

  std::printf("# service throughput: %zu circuits x %d repeats, %d "
              "concurrent clients, max_batch=%d max_wait_us=%lld\n",
              corpus.size(), repeat, clients, config.max_batch,
              static_cast<long long>(config.max_wait_us));

  auto fidelity =
      train_small_model(reward::RewardKind::kFidelity, corpus);
  auto depth = train_small_model(reward::RewardKind::kDepth, corpus);

  // The request mix: `repeat` waves over the corpus, alternating models,
  // so both lanes see traffic; wave 1 exercises batching, later waves are
  // repeats and exercise the cache ((repeat-1)/repeat ideal hit rate).
  std::vector<std::vector<Request>> waves(
      static_cast<std::size_t>(repeat));
  std::size_t num_requests = 0;
  for (auto& wave : waves) {
    for (std::size_t i = 0; i < corpus.size(); ++i) {
      wave.push_back({i % 2 == 0 ? "fidelity" : "depth", &corpus[i]});
      ++num_requests;
    }
  }

  const auto run_one = [&](int run_clients) {
    service::CompileService svc(config);
    svc.registry().add(
        "fidelity",
        std::shared_ptr<const core::Predictor>(&fidelity,
                                               [](const auto*) {}));
    svc.registry().add(
        "depth", std::shared_ptr<const core::Predictor>(
                     &depth, [](const auto*) {}));
    return run(svc, waves, run_clients);
  };

  std::printf("# single-stream pass (no batching possible)...\n");
  std::fflush(stdout);
  const RunResult single = run_one(1);
  std::printf("  single-stream: %7.1f req/sec  p50 %6lld us  p99 %6lld us\n",
              single.requests_per_sec,
              static_cast<long long>(single.p50_latency_us),
              static_cast<long long>(single.p99_latency_us));

  std::printf("# concurrent pass (%d clients)...\n", clients);
  std::fflush(stdout);
  const RunResult conc = run_one(clients);
  const double speedup =
      conc.requests_per_sec / std::max(single.requests_per_sec, 1e-12);
  const double hit_rate =
      conc.stats.requests > 0
          ? static_cast<double>(conc.stats.cache_hits) /
                static_cast<double>(conc.stats.requests)
          : 0.0;
  std::printf("  concurrent:    %7.1f req/sec  p50 %6lld us  p99 %6lld us\n",
              conc.requests_per_sec,
              static_cast<long long>(conc.p50_latency_us),
              static_cast<long long>(conc.p99_latency_us));
  std::printf("  cache hit rate %.3f, %llu batch(es), largest batch %d\n",
              hit_rate,
              static_cast<unsigned long long>(conc.stats.batches),
              conc.stats.max_batch_size);
  std::printf("  batch-size histogram:");
  for (const auto& [size, count] : conc.stats.batch_size_histogram) {
    std::printf(" %d:%llu", size,
                static_cast<unsigned long long>(count));
  }
  std::printf("\n  -> concurrent vs single-stream: %.2fx (target >= 1x; "
              "batching wins need >= 2 hardware threads)\n",
              speedup);

  std::FILE* json = std::fopen("BENCH_service_throughput.json", "w");
  if (json != nullptr) {
    std::fprintf(json, "{\n");
    bench_harness::write_meta(json);
    std::fprintf(json,
                 "  \"bench\": \"service_throughput\",\n"
                 "  \"num_requests\": %zu,\n"
                 "  \"num_clients\": %d,\n"
                 "  \"max_batch\": %d,\n"
                 "  \"max_wait_us\": %lld,\n"
                 "  \"requests_per_sec\": %.2f,\n"
                 "  \"p50_latency_us\": %lld,\n"
                 "  \"p99_latency_us\": %lld,\n"
                 "  \"cache_hit_rate\": %.4f,\n"
                 "  \"single_stream_rps\": %.2f,\n"
                 "  \"concurrent_vs_single_speedup\": %.3f,\n"
                 "  \"max_batch_observed\": %d,\n"
                 "  \"batch_size_histogram\": {",
                 num_requests, clients, config.max_batch,
                 static_cast<long long>(config.max_wait_us),
                 conc.requests_per_sec,
                 static_cast<long long>(conc.p50_latency_us),
                 static_cast<long long>(conc.p99_latency_us), hit_rate,
                 single.requests_per_sec, speedup,
                 conc.stats.max_batch_size);
    bool first = true;
    for (const auto& [size, count] : conc.stats.batch_size_histogram) {
      std::fprintf(json, "%s\"%d\": %llu", first ? "" : ", ", size,
                   static_cast<unsigned long long>(count));
      first = false;
    }
    std::fprintf(json, "}\n}\n");
    std::fclose(json);
    std::printf("  results written to BENCH_service_throughput.json\n");
  }
  return 0;
}
