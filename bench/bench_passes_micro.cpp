// Google-benchmark microbenchmarks of the compilation substrate: pass
// throughput, routing, feature extraction, the reward functions and PPO
// machinery. These quantify the per-step cost of the RL environment.

#include <benchmark/benchmark.h>

#include <random>

#include "bench_suite/benchmarks.hpp"
#include "device/library.hpp"
#include "features/features.hpp"
#include "passes/layout/layout.hpp"
#include "passes/opt/cancellation.hpp"
#include "passes/opt/composite.hpp"
#include "passes/opt/consolidate.hpp"
#include "passes/opt/one_qubit_opt.hpp"
#include "passes/routing/routing.hpp"
#include "passes/synthesis/basis_translator.hpp"
#include "reward/reward.hpp"
#include "rl/mlp.hpp"
#include "rl/ppo.hpp"

namespace {

using qrc::bench::BenchmarkFamily;

qrc::ir::Circuit test_circuit(int n) {
  return qrc::bench::make_benchmark(BenchmarkFamily::kQftEntangled, n, 1);
}

const qrc::device::Device& washington() {
  return qrc::device::get_device(qrc::device::DeviceId::kIbmqWashington);
}

void BM_BasisTranslator(benchmark::State& state) {
  const auto circuit = test_circuit(static_cast<int>(state.range(0)));
  qrc::passes::PassContext ctx;
  ctx.device = &washington();
  const qrc::passes::BasisTranslator pass;
  for (auto _ : state) {
    auto copy = circuit;
    benchmark::DoNotOptimize(pass.run(copy, ctx));
  }
}
BENCHMARK(BM_BasisTranslator)->Arg(5)->Arg(10)->Arg(20);

void BM_SabreLayoutAndRouting(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto circuit = test_circuit(n);
  qrc::passes::PassContext ctx;
  ctx.device = &washington();
  const qrc::passes::BasisTranslator pass;
  (void)pass.run(circuit, ctx);
  for (auto _ : state) {
    const auto layout = qrc::passes::compute_layout(
        qrc::passes::LayoutKind::kSabre, circuit, washington(), 1);
    auto placed = qrc::passes::apply_layout(circuit, layout, washington());
    benchmark::DoNotOptimize(qrc::passes::route(
        qrc::passes::RoutingKind::kSabreSwap, placed, washington(), 1));
  }
}
BENCHMARK(BM_SabreLayoutAndRouting)->Arg(5)->Arg(10)->Arg(20);

void BM_Optimize1q(benchmark::State& state) {
  const auto circuit = test_circuit(static_cast<int>(state.range(0)));
  const qrc::passes::Optimize1qGatesDecomposition pass;
  for (auto _ : state) {
    auto copy = circuit;
    benchmark::DoNotOptimize(pass.run(copy, {}));
  }
}
BENCHMARK(BM_Optimize1q)->Arg(10)->Arg(20);

void BM_CommutativeCancellation(benchmark::State& state) {
  const auto circuit = test_circuit(static_cast<int>(state.range(0)));
  const qrc::passes::CommutativeCancellation pass;
  for (auto _ : state) {
    auto copy = circuit;
    benchmark::DoNotOptimize(pass.run(copy, {}));
  }
}
BENCHMARK(BM_CommutativeCancellation)->Arg(10)->Arg(20);

void BM_ConsolidateBlocks(benchmark::State& state) {
  const auto circuit = test_circuit(static_cast<int>(state.range(0)));
  const qrc::passes::ConsolidateBlocks pass;
  for (auto _ : state) {
    auto copy = circuit;
    benchmark::DoNotOptimize(pass.run(copy, {}));
  }
}
BENCHMARK(BM_ConsolidateBlocks)->Arg(10)->Arg(20);

void BM_FullPeephole(benchmark::State& state) {
  const auto circuit = test_circuit(static_cast<int>(state.range(0)));
  const qrc::passes::FullPeepholeOptimise pass;
  for (auto _ : state) {
    auto copy = circuit;
    benchmark::DoNotOptimize(pass.run(copy, {}));
  }
}
BENCHMARK(BM_FullPeephole)->Arg(10);

void BM_FeatureExtraction(benchmark::State& state) {
  const auto circuit = test_circuit(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(qrc::features::extract_features(circuit));
  }
}
BENCHMARK(BM_FeatureExtraction)->Arg(5)->Arg(20);

void BM_ExpectedFidelity(benchmark::State& state) {
  auto circuit = test_circuit(10);
  qrc::passes::PassContext ctx;
  ctx.device = &washington();
  const qrc::passes::BasisTranslator pass;
  (void)pass.run(circuit, ctx);
  const auto layout = qrc::passes::compute_layout(
      qrc::passes::LayoutKind::kTrivial, circuit, washington());
  circuit = qrc::passes::apply_layout(circuit, layout, washington());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        qrc::reward::expected_fidelity(circuit, washington()));
  }
}
BENCHMARK(BM_ExpectedFidelity);

void BM_MlpForward(benchmark::State& state) {
  qrc::rl::Mlp net({7, 64, 64, 29}, 1);
  const std::vector<double> obs(7, 0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.forward(obs));
  }
}
BENCHMARK(BM_MlpForward);

void BM_MlpForwardBackward(benchmark::State& state) {
  qrc::rl::Mlp net({7, 64, 64, 29}, 1);
  const std::vector<double> obs(7, 0.5);
  const std::vector<double> grad(29, 0.01);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.forward_cached(obs));
    net.backward(grad);
  }
}
BENCHMARK(BM_MlpForwardBackward);

}  // namespace

BENCHMARK_MAIN();
