// Socket serve-layer scaling bench: stands up a real `qrc serve
// --listen`-style TCP server (compile service + event loop on an
// ephemeral port) and sweeps the number of concurrent client
// connections, measuring end-to-end request latency through the full
// stack — framing, admission control, lane batching, response fan-in.
// Each client runs a closed loop (send one request, read frames until
// the final lands); every fourth request is a deadline-bounded beam
// search, so the sweep also exercises streamed "partial" frames. The
// results are printed and written to BENCH_serve_scale.json:
// requests/sec, p50/p99/p999 latency, the shed rate (typed "overloaded"
// finals over total requests), and partials_delivered per sweep point.
//
// Knobs (see experiment_common.hpp): QRC_TRAIN_STEPS (default 4000)
// sizes model training, QRC_SERVE_SCALE_CONNS (default "1,4,16,64") the
// connection sweep, QRC_SERVE_SCALE_REQUESTS (default 8) requests per
// connection, QRC_SERVE_SCALE_LANE_QUEUE (default 256) the lane bound.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "experiment_common.hpp"
#include "ir/qasm.hpp"
#include "net/server.hpp"
#include "net/socket.hpp"
#include "service/compile_service.hpp"
#include "service/jsonl.hpp"

namespace {

using namespace qrc;
using Clock = std::chrono::steady_clock;

std::int64_t percentile(std::vector<std::int64_t>& sorted, double p) {
  if (sorted.empty()) {
    return 0;
  }
  const auto rank = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) / 100.0 + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

core::Predictor train_small_model(const std::vector<ir::Circuit>& corpus) {
  core::PredictorConfig config;
  config.reward = reward::RewardKind::kFidelity;
  config.seed = 17;
  config.ppo.total_timesteps =
      bench_harness::env_int("QRC_TRAIN_STEPS", 4000);
  config.ppo.steps_per_update = 512;
  config.ppo.hidden_sizes = {32};
  config.num_envs = bench_harness::num_envs();
  config.rollout_workers = bench_harness::rollout_workers();
  core::Predictor predictor(config);
  std::printf("# training model (%d timesteps)...\n",
              config.ppo.total_timesteps);
  std::fflush(stdout);
  (void)predictor.train(corpus);
  return predictor;
}

std::vector<int> parse_conn_sweep() {
  const char* env = std::getenv("QRC_SERVE_SCALE_CONNS");
  const std::string spec = env != nullptr ? env : "1,4,16,64";
  std::vector<int> out;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    const auto comma = spec.find(',', pos);
    const std::string token =
        spec.substr(pos, comma == std::string::npos ? spec.size() - pos
                                                    : comma - pos);
    out.push_back(std::max(1, std::atoi(token.c_str())));
    if (comma == std::string::npos) {
      break;
    }
    pos = comma + 1;
  }
  return out;
}

struct SweepPoint {
  int connections = 0;
  std::size_t requests = 0;
  double seconds = 0.0;
  double requests_per_sec = 0.0;
  std::int64_t p50_latency_us = 0;
  std::int64_t p99_latency_us = 0;
  std::int64_t p999_latency_us = 0;
  std::size_t shed = 0;
  double shed_rate = 0.0;
  std::uint64_t partials_delivered = 0;
};

/// One closed-loop client: connects, then for each request sends one
/// line and reads frames until the final (non-partial) frame arrives.
struct ClientResult {
  std::vector<std::int64_t> latencies_us;
  std::size_t shed = 0;
  std::uint64_t partials = 0;
  bool ok = true;
};

ClientResult run_client(int port, const std::vector<std::string>& requests) {
  ClientResult result;
  try {
    const net::Socket sock = net::connect_tcp("127.0.0.1", port);
    net::LineReader reader(sock.fd());
    for (const std::string& request : requests) {
      const auto start = Clock::now();
      net::send_all(sock.fd(), request + "\n");
      for (;;) {
        const auto line = reader.next_line();
        if (!line.has_value()) {
          result.ok = false;
          return result;
        }
        if (line->find("\"type\":\"partial\"") != std::string::npos) {
          ++result.partials;
          continue;
        }
        if (line->find("\"overloaded\"") != std::string::npos) {
          ++result.shed;
        }
        break;  // final frame (result or error) for this request
      }
      result.latencies_us.push_back(
          std::chrono::duration_cast<std::chrono::microseconds>(
              Clock::now() - start)
              .count());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "client error: %s\n", e.what());
    result.ok = false;
  }
  return result;
}

SweepPoint run_sweep_point(service::CompileService& svc, int connections,
                           const std::vector<std::string>& request_mix) {
  net::ServerConfig net_config;
  net_config.host = "127.0.0.1";
  net_config.port = 0;
  net_config.max_connections = static_cast<std::size_t>(connections) + 8;
  net::Server server(svc, net_config);
  server.start();

  std::vector<ClientResult> results(
      static_cast<std::size_t>(connections));
  const auto start = Clock::now();
  {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(connections));
    for (int c = 0; c < connections; ++c) {
      threads.emplace_back([&, c] {
        results[static_cast<std::size_t>(c)] =
            run_client(server.port(), request_mix);
      });
    }
    for (auto& thread : threads) {
      thread.join();
    }
  }
  const double seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  server.stop();

  SweepPoint point;
  point.connections = connections;
  point.seconds = seconds;
  std::vector<std::int64_t> latencies;
  for (const ClientResult& r : results) {
    if (!r.ok) {
      std::fprintf(stderr, "warning: a client aborted early\n");
    }
    latencies.insert(latencies.end(), r.latencies_us.begin(),
                     r.latencies_us.end());
    point.shed += r.shed;
    point.partials_delivered += r.partials;
  }
  point.requests = latencies.size();
  point.requests_per_sec =
      seconds > 0.0 ? static_cast<double>(point.requests) / seconds : 0.0;
  std::sort(latencies.begin(), latencies.end());
  point.p50_latency_us = percentile(latencies, 50.0);
  point.p99_latency_us = percentile(latencies, 99.0);
  point.p999_latency_us = percentile(latencies, 99.9);
  point.shed_rate =
      point.requests > 0
          ? static_cast<double>(point.shed) /
                static_cast<double>(point.requests)
          : 0.0;
  return point;
}

}  // namespace

int main() {
  const int requests_per_conn =
      std::max(1, bench_harness::env_int("QRC_SERVE_SCALE_REQUESTS", 8));
  const auto lane_queue = static_cast<std::size_t>(
      std::max(0, bench_harness::env_int("QRC_SERVE_SCALE_LANE_QUEUE", 256)));
  const std::vector<int> sweep = parse_conn_sweep();

  const std::vector<ir::Circuit> corpus = bench::benchmark_suite(2, 4, 8);
  const core::Predictor model = train_small_model(corpus);

  // The per-client request script: a mix of plain compiles over the
  // corpus with every fourth request a deadline-bounded beam search
  // (which streams partial frames). Identical across connections so
  // sweep points are comparable; the LRU cache is disabled so every
  // request exercises a real policy rollout.
  std::vector<std::string> request_mix;
  request_mix.reserve(static_cast<std::size_t>(requests_per_conn));
  for (int i = 0; i < requests_per_conn; ++i) {
    const ir::Circuit& circuit =
        corpus[static_cast<std::size_t>(i) % corpus.size()];
    std::string line =
        "{\"v\":1,\"op\":\"compile\",\"id\":\"r" + std::to_string(i) +
        "\",\"qasm\":" + service::json_quote(ir::to_qasm(circuit));
    if (i % 4 == 3) {
      line += ",\"search\":\"beam:4\",\"deadline_ms\":50";
    }
    line += "}";
    request_mix.push_back(std::move(line));
  }

  std::printf("# serve-scale sweep: %d request(s)/connection, lane queue "
              "bound %zu\n",
              requests_per_conn, lane_queue);
  std::vector<SweepPoint> points;
  for (const int connections : sweep) {
    service::ServiceConfig config;
    config.cache_entries = 0;  // measure compiles, not cache hits
    config.max_lane_queue = lane_queue;
    service::CompileService svc(config);
    svc.registry().add(
        "fidelity",
        std::shared_ptr<const core::Predictor>(&model,
                                               [](const core::Predictor*) {}));
    const SweepPoint point =
        run_sweep_point(svc, connections, request_mix);
    std::printf(
        "  conns=%3d: %6zu requests, %8.1f req/s, p50 %lld us, p99 %lld "
        "us, p99.9 %lld us, shed %.3f, partials %llu\n",
        point.connections, point.requests, point.requests_per_sec,
        static_cast<long long>(point.p50_latency_us),
        static_cast<long long>(point.p99_latency_us),
        static_cast<long long>(point.p999_latency_us), point.shed_rate,
        static_cast<unsigned long long>(point.partials_delivered));
    std::fflush(stdout);
    points.push_back(point);
  }

  std::FILE* json = std::fopen("BENCH_serve_scale.json", "w");
  if (json != nullptr) {
    std::fprintf(json, "{\n");
    bench_harness::write_meta(json);
    std::fprintf(json,
                 "  \"bench\": \"serve_scale\",\n"
                 "  \"requests_per_connection\": %d,\n"
                 "  \"max_lane_queue\": %zu,\n"
                 "  \"sweep\": [",
                 requests_per_conn, lane_queue);
    bool first = true;
    for (const SweepPoint& p : points) {
      std::fprintf(
          json,
          "%s\n    {\"connections\": %d, \"requests\": %zu, "
          "\"requests_per_sec\": %.2f, \"p50_latency_us\": %lld, "
          "\"p99_latency_us\": %lld, \"p999_latency_us\": %lld, "
          "\"shed_rate\": %.4f, \"partials_delivered\": %llu}",
          first ? "" : ",", p.connections, p.requests, p.requests_per_sec,
          static_cast<long long>(p.p50_latency_us),
          static_cast<long long>(p.p99_latency_us),
          static_cast<long long>(p.p999_latency_us), p.shed_rate,
          static_cast<unsigned long long>(p.partials_delivered));
      first = false;
    }
    std::fprintf(json, "\n  ]\n}\n");
    std::fclose(json);
    std::printf("  results written to BENCH_serve_scale.json\n");
  }
  return 0;
}
