// Observability overhead bench: proves the metrics/tracing layer is
// effectively free on the serving hot path. Three interleaved modes run
// the same compile workload through a CompileService (cache disabled, so
// every request is a real policy rollout):
//
//   baseline    obs::set_enabled(false) — every counter/histogram
//               mutation short-circuits at the kill switch
//   obs_on      the production default: registry mutations live,
//               QRC_OBS_DETAIL off (DetailTimer = one branch)
//   log_on      obs_on plus the structured logger at info level — the
//               service's hot-path lines are debug/rate-limited, so this
//               measures the per-request should_log checks
//   detail_on   QRC_OBS_DETAIL on plus a per-request TraceContext —
//               the full span pipeline, reported but not asserted
//   profile_on  obs_on plus a live 97 Hz SIGPROF sampling session over
//               the request — measures the cost of taking profiles in
//               production (signal delivery + fp-walk per tick)
//
// The five modes interleave at request granularity (each request runs
// once per mode, in rotating order, against that mode's persistent
// service) so machine-load drift over the run cancels out instead of
// biasing one mode. Every request's submit-to-completion latency is
// pooled per mode; the compared statistic is the pooled median, which
// shrugs off scheduler-wakeup spikes that would dominate a wall-clock
// diff. The bench asserts obs_on AND log_on within QRC_OBS_BENCH_MAX_PCT
// (default 2%) of baseline, and profile_on within
// QRC_OBS_BENCH_MAX_PROFILE_PCT (default 5%), exiting nonzero past
// either ceiling.
//
// A second section stands up a live server with the /metrics side
// listener, drives one traced verified search compile over the wire, and
// scrapes GET /metrics — recording which core metric families appear in
// the snapshot. Results go to BENCH_obs_overhead.json.
//
// Knobs: QRC_TRAIN_STEPS (default 2000) sizes model training,
// QRC_OBS_BENCH_REQUESTS (default 48) requests per trial,
// QRC_OBS_BENCH_TRIALS (default 5) trials per mode,
// QRC_OBS_BENCH_MAX_PCT (default 2.0) the asserted overhead ceiling,
// QRC_OBS_BENCH_MAX_PROFILE_PCT (default 5.0) the profile_on ceiling.

#include <sys/socket.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "experiment_common.hpp"
#include "ir/qasm.hpp"
#include "net/server.hpp"
#include "net/socket.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"
#include "service/compile_service.hpp"
#include "service/jsonl.hpp"

namespace {

using namespace qrc;
using Clock = std::chrono::steady_clock;

core::Predictor train_small_model(const std::vector<ir::Circuit>& corpus) {
  core::PredictorConfig config;
  config.reward = reward::RewardKind::kFidelity;
  config.seed = 23;
  config.ppo.total_timesteps =
      bench_harness::env_int("QRC_TRAIN_STEPS", 2000);
  config.ppo.steps_per_update = 512;
  config.ppo.hidden_sizes = {32};
  config.num_envs = bench_harness::num_envs();
  config.rollout_workers = bench_harness::rollout_workers();
  core::Predictor predictor(config);
  std::printf("# training model (%d timesteps)...\n",
              config.ppo.total_timesteps);
  std::fflush(stdout);
  (void)predictor.train(corpus);
  return predictor;
}

enum class Mode { kBaseline, kObsOn, kLogOn, kDetailOn, kProfileOn };

/// Each mode gets one persistent service; requests alternate between the
/// modes at sub-millisecond granularity so that machine-load drift over
/// the run hits every mode equally instead of biasing whichever one ran
/// during a quiet stretch. Flipping the global obs switches per request
/// is safe because submissions are sequential: .get() completes the
/// in-flight request before the next flip.
struct ModeLane {
  Mode mode;
  std::unique_ptr<service::CompileService> svc;
  std::vector<std::int64_t> samples;
};

std::unique_ptr<service::CompileService> make_service(
    const core::Predictor& model) {
  service::ServiceConfig config;
  config.cache_entries = 0;  // measure rollouts, not cache hits
  config.max_wait_us = 0;    // dispatch immediately: the batch window's
                             // timer jitter would otherwise swamp the
                             // nanoseconds under measurement
  auto svc = std::make_unique<service::CompileService>(config);
  svc->registry().add(
      "fidelity",
      std::shared_ptr<const core::Predictor>(&model,
                                             [](const core::Predictor*) {}));
  return svc;
}

void run_one(ModeLane& lane, const ir::Circuit& circuit, int i,
             bool record) {
  obs::set_enabled(lane.mode != Mode::kBaseline);
  obs::set_detail_enabled(lane.mode == Mode::kDetailOn);
  obs::Logger::instance().set_level(lane.mode == Mode::kLogOn
                                        ? obs::LogLevel::kInfo
                                        : obs::LogLevel::kOff);
  std::shared_ptr<obs::TraceContext> trace;
  if (lane.mode == Mode::kDetailOn) {
    trace = std::make_shared<obs::TraceContext>("r" + std::to_string(i));
  }
  // profile_on: the sampling session brackets the submission, so every
  // SIGPROF tick lands while the rollout runs; the setitimer start/stop
  // syscalls themselves stay outside the measured latency_us.
  const bool profiling =
      lane.mode == Mode::kProfileOn && obs::Profiler::start(97);
  const auto response =
      lane.svc->submit("r" + std::to_string(i), "fidelity", circuit,
                       /*verify=*/false, std::nullopt, trace)
          .get();
  if (profiling) {
    obs::Profiler::stop();
  }
  if (record) {
    lane.samples.push_back(response.latency_us);
  }
  obs::set_enabled(true);
  obs::set_detail_enabled(false);
  obs::Logger::instance().set_level(obs::LogLevel::kOff);
}

std::int64_t median_of(std::vector<std::int64_t> samples) {
  if (samples.empty()) {
    return 0;
  }
  const auto mid = samples.begin() +
                   static_cast<std::ptrdiff_t>(samples.size() / 2);
  std::nth_element(samples.begin(), mid, samples.end());
  return *mid;
}

/// Live-server leg: one traced compile over the wire plus an HTTP scrape;
/// returns the metric families found in the snapshot.
std::vector<std::string> scrape_live_server(const core::Predictor& model,
                                            bool* traced_ok) {
  service::CompileService svc;
  svc.registry().add(
      "fidelity",
      std::shared_ptr<const core::Predictor>(&model,
                                             [](const core::Predictor*) {}));
  net::ServerConfig net_config;
  net_config.host = "127.0.0.1";
  net_config.port = 0;
  net_config.metrics_port = 0;
  net::Server server(svc, net_config);
  server.start();

  const ir::Circuit circuit = bench::make_benchmark(
      bench::BenchmarkFamily::kGhz, 3, 1);
  {
    const net::Socket sock = net::connect_tcp("127.0.0.1", server.port());
    net::LineReader reader(sock.fd());
    net::send_all(sock.fd(),
                  "{\"v\":1,\"op\":\"compile\",\"id\":\"t1\",\"qasm\":" +
                      service::json_quote(ir::to_qasm(circuit)) +
                      ",\"verify\":true,\"search\":\"beam:2\","
                      "\"trace\":true}\n");
    *traced_ok = false;
    while (const auto line = reader.next_line()) {
      if (line->find("\"type\":\"partial\"") != std::string::npos) {
        continue;
      }
      *traced_ok = line->find("\"trace\":{") != std::string::npos;
      break;
    }
  }

  std::string snapshot;
  {
    const net::Socket sock =
        net::connect_tcp("127.0.0.1", server.metrics_port());
    net::send_all(sock.fd(), "GET /metrics HTTP/1.0\r\n\r\n");
    char buf[8192];
    for (;;) {
      const auto n = ::recv(sock.fd(), buf, sizeof(buf), 0);
      if (n <= 0) {
        break;
      }
      snapshot.append(buf, static_cast<std::size_t>(n));
    }
  }
  server.stop();

  const std::vector<std::string> core_families = {
      "qrc_requests_total",       "qrc_request_latency_us",
      "qrc_queue_wait_us",        "qrc_rollout_duration_us",
      "qrc_batches_total",        "qrc_search_requests_total",
      "qrc_search_duration_us",   "qrc_verify_verdicts_total",
      "qrc_verify_duration_us",   "qrc_cache_hits_total",
      "qrc_net_frames_in_total",  "qrc_net_frames_out_total",
      "qrc_net_connections_active"};
  std::vector<std::string> found;
  for (const std::string& family : core_families) {
    if (snapshot.find(family) != std::string::npos) {
      found.push_back(family);
    }
  }
  return found;
}

}  // namespace

int main() {
  const int requests =
      std::max(1, bench_harness::env_int("QRC_OBS_BENCH_REQUESTS", 48));
  const int trials =
      std::max(1, bench_harness::env_int("QRC_OBS_BENCH_TRIALS", 5));
  const double max_pct = [] {
    const char* v = std::getenv("QRC_OBS_BENCH_MAX_PCT");
    return v != nullptr && *v != '\0' ? std::atof(v) : 2.0;
  }();
  const double max_profile_pct = [] {
    const char* v = std::getenv("QRC_OBS_BENCH_MAX_PROFILE_PCT");
    return v != nullptr && *v != '\0' ? std::atof(v) : 5.0;
  }();

  const std::vector<ir::Circuit> corpus = bench::benchmark_suite(2, 4, 6);
  const core::Predictor model = train_small_model(corpus);

  // The main thread participates in rollouts via the pool's
  // caller-runs path, so enroll it before any profile_on request.
  obs::Profiler::enroll_current_thread();

  ModeLane lanes[5] = {{Mode::kBaseline, make_service(model), {}},
                       {Mode::kObsOn, make_service(model), {}},
                       {Mode::kLogOn, make_service(model), {}},
                       {Mode::kDetailOn, make_service(model), {}},
                       {Mode::kProfileOn, make_service(model), {}}};

  // Warm-up pass so first-touch costs (lane spin-up, allocator) are paid
  // before any timed request.
  for (int i = 0; i < requests; ++i) {
    for (ModeLane& lane : lanes) {
      run_one(lane, corpus[static_cast<std::size_t>(i) % corpus.size()], i,
              /*record=*/false);
    }
  }

  for (int t = 0; t < trials; ++t) {
    for (int i = 0; i < requests; ++i) {
      const ir::Circuit& circuit =
          corpus[static_cast<std::size_t>(i) % corpus.size()];
      // Rotate which mode goes first so no mode always pays (or always
      // skips) the cache-warming cost of a fresh circuit.
      for (int m = 0; m < 5; ++m) {
        run_one(lanes[(m + i + t) % 5], circuit, t * requests + i,
                /*record=*/true);
      }
    }
    std::printf("# trial %d/%d: pooled medians baseline %lld us, obs_on "
                "%lld us, log_on %lld us, detail_on %lld us, profile_on "
                "%lld us\n",
                t + 1, trials,
                static_cast<long long>(median_of(lanes[0].samples)),
                static_cast<long long>(median_of(lanes[1].samples)),
                static_cast<long long>(median_of(lanes[2].samples)),
                static_cast<long long>(median_of(lanes[3].samples)),
                static_cast<long long>(median_of(lanes[4].samples)));
    std::fflush(stdout);
  }

  const std::int64_t best_baseline = median_of(lanes[0].samples);
  const std::int64_t best_obs_on = median_of(lanes[1].samples);
  const std::int64_t best_log_on = median_of(lanes[2].samples);
  const std::int64_t best_detail = median_of(lanes[3].samples);
  const std::int64_t best_profile = median_of(lanes[4].samples);
  const auto pct = [&](std::int64_t us) {
    return best_baseline > 0
               ? 100.0 * (static_cast<double>(us - best_baseline) /
                          static_cast<double>(best_baseline))
               : 0.0;
  };
  const double overhead_on_pct = pct(best_obs_on);
  const double overhead_log_pct = pct(best_log_on);
  const double overhead_detail_pct = pct(best_detail);
  const double overhead_profile_pct = pct(best_profile);
  std::printf("# obs_on overhead %.3f%%, log_on %.3f%% (ceiling %.1f%%), "
              "detail_on %.3f%% (reported only), profile_on %.3f%% "
              "(ceiling %.1f%%)\n",
              overhead_on_pct, overhead_log_pct, max_pct,
              overhead_detail_pct, overhead_profile_pct, max_profile_pct);

  bool traced_ok = false;
  const std::vector<std::string> found =
      scrape_live_server(model, &traced_ok);
  std::printf("# live server: traced response %s, %zu core famil%s in "
              "the /metrics snapshot\n",
              traced_ok ? "carried a span tree" : "MISSING its trace",
              found.size(), found.size() == 1 ? "y" : "ies");

  std::FILE* json = std::fopen("BENCH_obs_overhead.json", "w");
  if (json != nullptr) {
    std::fprintf(json, "{\n");
    bench_harness::write_meta(json);
    std::fprintf(json,
                 "  \"bench\": \"obs_overhead\",\n"
                 "  \"requests_per_trial\": %d,\n"
                 "  \"trials\": %d,\n"
                 "  \"baseline_us\": %lld,\n"
                 "  \"obs_on_us\": %lld,\n"
                 "  \"log_on_us\": %lld,\n"
                 "  \"detail_on_us\": %lld,\n"
                 "  \"profile_on_us\": %lld,\n"
                 "  \"overhead_on_pct\": %.4f,\n"
                 "  \"overhead_log_pct\": %.4f,\n"
                 "  \"overhead_detail_pct\": %.4f,\n"
                 "  \"overhead_profile_pct\": %.4f,\n"
                 "  \"max_overhead_pct\": %.2f,\n"
                 "  \"max_profile_pct\": %.2f,\n"
                 "  \"traced_response_has_trace\": %s,\n"
                 "  \"snapshot_metrics\": [",
                 requests, trials, static_cast<long long>(best_baseline),
                 static_cast<long long>(best_obs_on),
                 static_cast<long long>(best_log_on),
                 static_cast<long long>(best_detail),
                 static_cast<long long>(best_profile), overhead_on_pct,
                 overhead_log_pct, overhead_detail_pct,
                 overhead_profile_pct, max_pct, max_profile_pct,
                 traced_ok ? "true" : "false");
    for (std::size_t i = 0; i < found.size(); ++i) {
      std::fprintf(json, "%s\"%s\"", i == 0 ? "" : ", ", found[i].c_str());
    }
    std::fprintf(json, "]\n}\n");
    std::fclose(json);
    std::printf("  results written to BENCH_obs_overhead.json\n");
  }

  if (overhead_on_pct > max_pct) {
    std::fprintf(stderr,
                 "FAIL: obs_on overhead %.3f%% exceeds the %.1f%% ceiling\n",
                 overhead_on_pct, max_pct);
    return 1;
  }
  if (overhead_log_pct > max_pct) {
    std::fprintf(stderr,
                 "FAIL: log_on overhead %.3f%% exceeds the %.1f%% ceiling\n",
                 overhead_log_pct, max_pct);
    return 1;
  }
  if (overhead_profile_pct > max_profile_pct) {
    std::fprintf(stderr,
                 "FAIL: profile_on overhead %.3f%% exceeds the %.1f%% "
                 "ceiling\n",
                 overhead_profile_pct, max_profile_pct);
    return 1;
  }
  if (!traced_ok) {
    std::fprintf(stderr, "FAIL: traced wire response carried no trace\n");
    return 1;
  }
  return 0;
}
