// Rollout-throughput microbench for the vectorized PPO engine: measures
// environment steps/sec of policy-driven rollouts over the compilation MDP
// for several (num_envs, num_workers) configurations, scalar-vs-batched
// policy forward throughput (Mlp::forward vs Mlp::forward_batch on the
// worker pool), plus end-to-end train_ppo timing serial vs vectorized.
//
// Knobs (see experiment_common.hpp): QRC_TRAIN_STEPS caps the measured
// rollout steps per configuration (default 20000); QRC_EVAL_COUNT sizes the
// corpus. Results are printed and also written to
// BENCH_rollout_throughput.json in the working directory.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <random>
#include <span>
#include <thread>
#include <vector>

#include "experiment_common.hpp"
#include "core/compilation_env.hpp"
#include "rl/mlp.hpp"
#include "rl/ppo.hpp"
#include "rl/thread_pool.hpp"
#include "rl/vec_env.hpp"

namespace {

using namespace qrc;
using Clock = std::chrono::steady_clock;

struct Measurement {
  int num_envs = 1;
  int num_workers = 1;
  double steps_per_sec = 0.0;
};

rl::VecEnv make_vec_env(const core::CompilationEnv& prototype, int num_envs,
                        int num_workers) {
  return rl::VecEnv(
      [&](int i) {
        return prototype.clone_with_seed(
            17 + 7919 * static_cast<std::uint64_t>(i + 1));
      },
      num_envs, num_workers);
}

/// Policy-driven rollout (sample + step + auto-reset), the hot loop of
/// train_ppo's collection phase, without the optimizer.
Measurement measure_rollout(const core::CompilationEnv& prototype,
                            const rl::PpoConfig& ppo, int num_envs,
                            int num_workers, int total_steps) {
  rl::VecEnv envs = make_vec_env(prototype, num_envs, num_workers);
  const rl::PpoAgent agent(envs.observation_size(), envs.num_actions(), ppo);
  std::vector<std::mt19937_64> rngs;
  for (int e = 0; e < num_envs; ++e) {
    rngs.emplace_back(101 + 31 * static_cast<std::uint64_t>(e));
  }

  envs.reset();
  int steps = 0;
  const auto start = Clock::now();
  while (steps < total_steps) {
    envs.step_with([&](int e) {
      const auto idx = static_cast<std::size_t>(e);
      return agent.act_sample(envs.observations()[idx],
                              envs.action_masks()[idx], rngs[idx]);
    });
    steps += num_envs;
  }
  const double seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  return {num_envs, num_workers, static_cast<double>(steps) / seconds};
}

/// Scalar-vs-batched policy forward throughput: the same MLP evaluates the
/// same observations one at a time (Mlp::forward, the pre-batching hot
/// path) and as row-major batches (Mlp::forward_batch on a worker pool).
struct ForwardMeasurement {
  int batch = 0;
  int workers = 0;
  double scalar_obs_per_sec = 0.0;
  double batch_obs_per_sec = 0.0;
  double speedup = 0.0;
};

ForwardMeasurement measure_forward(int obs_size, int num_actions, int batch,
                                   int total_samples, int workers) {
  const rl::Mlp policy({obs_size, 64, 64, num_actions}, 17);
  std::mt19937_64 rng(23);
  std::uniform_real_distribution<double> uniform(0.0, 1.0);
  std::vector<double> inputs(static_cast<std::size_t>(batch) *
                             static_cast<std::size_t>(obs_size));
  for (double& v : inputs) {
    v = uniform(rng);
  }
  const int rounds = std::max(1, total_samples / batch);

  ForwardMeasurement out;
  out.batch = batch;
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  out.workers = workers > 0 ? workers : std::max(1, hw);

  double sink = 0.0;
  auto start = Clock::now();
  for (int r = 0; r < rounds; ++r) {
    for (int i = 0; i < batch; ++i) {
      const auto row = std::span<const double>(inputs).subspan(
          static_cast<std::size_t>(i) * static_cast<std::size_t>(obs_size),
          static_cast<std::size_t>(obs_size));
      sink += policy.forward(row)[0];
    }
  }
  double seconds = std::chrono::duration<double>(Clock::now() - start).count();
  out.scalar_obs_per_sec =
      static_cast<double>(rounds) * batch / std::max(seconds, 1e-12);

  rl::WorkerPool pool(out.workers);
  std::vector<double> outputs;
  start = Clock::now();
  for (int r = 0; r < rounds; ++r) {
    policy.forward_batch(inputs, batch, outputs, &pool);
    sink += outputs[0];
  }
  seconds = std::chrono::duration<double>(Clock::now() - start).count();
  out.batch_obs_per_sec =
      static_cast<double>(rounds) * batch / std::max(seconds, 1e-12);
  out.speedup = out.batch_obs_per_sec / out.scalar_obs_per_sec;
  if (sink == 12345.6789) {  // defeat dead-code elimination
    std::printf("#\n");
  }
  return out;
}

double measure_train_seconds(const std::vector<ir::Circuit>& corpus,
                             rl::PpoConfig ppo, int num_envs,
                             int num_workers) {
  core::CompilationEnvConfig env_config;
  env_config.seed = 17;
  const auto start = Clock::now();
  if (num_envs <= 1) {
    core::CompilationEnv env(corpus, env_config);
    (void)rl::train_ppo(env, ppo);
  } else {
    const core::CompilationEnv prototype(corpus, env_config);
    rl::VecEnv envs = make_vec_env(prototype, num_envs, num_workers);
    (void)rl::train_ppo_vec(envs, ppo);
  }
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

int main() {
  const int total_steps = bench_harness::env_int("QRC_TRAIN_STEPS", 20000);
  const int corpus_size =
      std::max(4, bench_harness::env_int("QRC_EVAL_COUNT", 20));
  const auto corpus = bench::benchmark_suite(2, 12, corpus_size);
  std::printf("# rollout throughput: %d steps per config, corpus of %zu "
              "circuits (2-12 qubits)\n",
              total_steps, corpus.size());

  core::CompilationEnvConfig env_config;
  env_config.seed = 17;
  const core::CompilationEnv prototype(corpus, env_config);
  rl::PpoConfig ppo;
  ppo.seed = 17;

  std::vector<Measurement> results;
  for (const auto [envs, workers] :
       {std::pair{1, 1}, {4, 1}, {4, 2}, {4, 4}, {8, 4}}) {
    results.push_back(
        measure_rollout(prototype, ppo, envs, workers, total_steps));
    const auto& m = results.back();
    std::printf("  num_envs=%d workers=%d  %10.1f steps/sec\n", m.num_envs,
                m.num_workers, m.steps_per_sec);
    std::fflush(stdout);
  }
  const double base = results.front().steps_per_sec;
  double speedup_4w = 0.0;
  for (const auto& m : results) {
    if (m.num_envs == 4 && m.num_workers == 4) {
      speedup_4w = m.steps_per_sec / base;
    }
  }
  std::printf("  -> 4 envs / 4 workers vs serial: %.2fx (target >= 2x on "
              ">= 4 hardware threads)\n",
              speedup_4w);

  // Scalar vs batched policy forward (the per-round inference of the
  // batched rollout engine): one observation at a time vs one row-major
  // [batch x obs] pass on the worker pool.
  const ForwardMeasurement fwd = measure_forward(
      prototype.observation_size(), prototype.num_actions(), 256,
      std::max(total_steps, 50000),
      bench_harness::env_int("QRC_ROLLOUT_WORKERS", 0));
  std::printf("  policy forward: scalar %10.0f obs/sec, batched(%d rows, "
              "%d workers) %10.0f obs/sec -> %.2fx (target >= 2x on >= 4 "
              "hardware threads)\n",
              fwd.scalar_obs_per_sec, fwd.batch, fwd.workers,
              fwd.batch_obs_per_sec, fwd.speedup);

  // End-to-end PPO wall time on a short budget.
  rl::PpoConfig train_ppo_cfg;
  train_ppo_cfg.seed = 17;
  train_ppo_cfg.total_timesteps = std::min(total_steps, 8192);
  train_ppo_cfg.steps_per_update = 512;
  const double serial_s =
      measure_train_seconds(corpus, train_ppo_cfg, 1, 1);
  const double vec_s = measure_train_seconds(corpus, train_ppo_cfg, 4, 4);
  std::printf("  train_ppo %d steps: serial %.2fs, 4 envs/4 workers %.2fs "
              "(%.2fx)\n",
              train_ppo_cfg.total_timesteps, serial_s, vec_s,
              serial_s / vec_s);

  std::FILE* json = std::fopen("BENCH_rollout_throughput.json", "w");
  if (json != nullptr) {
    std::fprintf(json, "{\n");
    bench_harness::write_meta(json);
    std::fprintf(json, "  \"bench\": \"rollout_throughput\",\n"
                       "  \"total_steps\": %d,\n  \"configs\": [\n",
                 total_steps);
    for (std::size_t i = 0; i < results.size(); ++i) {
      std::fprintf(json,
                   "    {\"num_envs\": %d, \"workers\": %d, "
                   "\"steps_per_sec\": %.1f}%s\n",
                   results[i].num_envs, results[i].num_workers,
                   results[i].steps_per_sec,
                   i + 1 < results.size() ? "," : "");
    }
    std::fprintf(json,
                 "  ],\n  \"speedup_4env_4worker\": %.3f,\n"
                 "  \"forward_scalar_obs_per_sec\": %.1f,\n"
                 "  \"forward_batch_obs_per_sec\": %.1f,\n"
                 "  \"forward_batch_speedup\": %.3f,\n"
                 "  \"forward_batch_size\": %d,\n"
                 "  \"forward_batch_workers\": %d,\n"
                 "  \"train_serial_sec\": %.3f,\n"
                 "  \"train_vec_sec\": %.3f\n}\n",
                 speedup_4w, fwd.scalar_obs_per_sec, fwd.batch_obs_per_sec,
                 fwd.speedup, fwd.batch, fwd.workers, serial_s, vec_s);
    std::fclose(json);
    std::printf("  results written to BENCH_rollout_throughput.json\n");
  }
  return 0;
}
