// Reproduces Fig. 3d / 3e / 3f of the paper: average reward difference per
// benchmark algorithm (positive = RL gain), for the three reward
// functions.
//
// Paper reference values: average absolute improvements vs Qiskit/TKET of
// 4.9%/10.7% (fidelity), 22.6%/22.8% (critical depth), 5.5%/8.5%
// (combination).

#include <cstdio>

#include "experiment_common.hpp"

int main() {
  using namespace qrc;
  using namespace qrc::bench_harness;

  const auto corpus = make_corpus();
  std::printf("== Fig. 3d/3e/3f: per-benchmark average reward differences ==\n");
  std::printf("# corpus: %zu circuits\n", corpus.size());

  const struct {
    reward::RewardKind kind;
    const char* figure;
  } experiments[] = {
      {reward::RewardKind::kFidelity, "Fig. 3d (fidelity)"},
      {reward::RewardKind::kCriticalDepth, "Fig. 3e (critical depth)"},
      {reward::RewardKind::kCombination, "Fig. 3f (combination)"},
  };

  for (const auto& exp : experiments) {
    std::printf("\n---- %s ----\n", exp.figure);
    const auto predictor = train_model(exp.kind, corpus, /*seed=*/23);
    const auto records = evaluate_corpus(predictor, exp.kind, corpus);
    print_per_family_averages(records, reward::reward_name(exp.kind).data());
  }
  return 0;
}
