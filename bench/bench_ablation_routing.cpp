// Ablation benches for the design choices called out in DESIGN.md:
//  1. routing heuristics: SWAP counts of the four routers across devices —
//     quantifies why the agent prefers SABRE on sparse topologies;
//  2. learned-policy episode lengths: how many actions the trained agent
//     needs to reach Done;
//  3. feature sensitivity: reward lost when observation features are
//     zeroed at inference time.

#include <cstdio>
#include <map>

#include "experiment_common.hpp"
#include "features/features.hpp"
#include "passes/layout/layout.hpp"
#include "passes/routing/routing.hpp"
#include "passes/synthesis/basis_translator.hpp"

namespace {

using namespace qrc;
using namespace qrc::bench_harness;

void ablate_routing() {
  std::printf("== Ablation 1: routing heuristics (total SWAPs inserted) ==\n");
  const device::DeviceId targets[] = {device::DeviceId::kIbmqMontreal,
                                      device::DeviceId::kIbmqWashington,
                                      device::DeviceId::kRigettiAspenM2};
  const passes::RoutingKind routers[] = {
      passes::RoutingKind::kBasicSwap, passes::RoutingKind::kStochasticSwap,
      passes::RoutingKind::kSabreSwap, passes::RoutingKind::kTketRouting};

  std::printf("%-18s %12s %14s %12s %12s\n", "device", "BasicSwap",
              "StochasticSwap", "SabreSwap", "TketRouting");
  for (const auto id : targets) {
    const auto& dev = device::get_device(id);
    std::map<passes::RoutingKind, int> totals;
    for (const auto family :
         {bench::BenchmarkFamily::kQft, bench::BenchmarkFamily::kQaoa,
          bench::BenchmarkFamily::kPortfolioQaoa,
          bench::BenchmarkFamily::kSu2Random}) {
      for (const int n : {8, 12, 16}) {
        auto circuit = bench::make_benchmark(family, n, 1);
        passes::PassContext ctx;
        ctx.device = &dev;
        const passes::BasisTranslator translator;
        (void)translator.run(circuit, ctx);
        const auto layout = passes::compute_layout(
            passes::LayoutKind::kSabre, circuit, dev, 3);
        const auto placed = passes::apply_layout(circuit, layout, dev);
        for (const auto router : routers) {
          totals[router] += passes::route(router, placed, dev, 3).swap_count;
        }
      }
    }
    std::printf("%-18s %12d %14d %12d %12d\n", dev.name().c_str(),
                totals[passes::RoutingKind::kBasicSwap],
                totals[passes::RoutingKind::kStochasticSwap],
                totals[passes::RoutingKind::kSabreSwap],
                totals[passes::RoutingKind::kTketRouting]);
  }
  std::printf("(12 circuits per device: qft/qaoa/portfolioqaoa/su2random at "
              "8/12/16 qubits)\n\n");
}

void ablate_episode_lengths_and_features() {
  auto corpus = bench::benchmark_suite(2, 16, 60);
  const auto predictor =
      train_model(reward::RewardKind::kFidelity, corpus, /*seed=*/31);

  std::printf("\n== Ablation 2: learned-policy episode lengths ==\n");
  std::map<int, int> length_histogram;
  int fallbacks = 0;
  double mean_len = 0.0;
  for (const auto& circuit : corpus) {
    const auto result = predictor.compile(circuit);
    const int len = static_cast<int>(result.action_trace.size());
    ++length_histogram[len];
    mean_len += len;
    fallbacks += result.used_fallback ? 1 : 0;
  }
  mean_len /= static_cast<double>(corpus.size());
  for (const auto& [len, count] : length_histogram) {
    std::printf("  %2d actions: %s\n", len,
                std::string(static_cast<std::size_t>(count), '#').c_str());
  }
  std::printf("  mean %.1f actions/episode, %d fallbacks of %zu\n", mean_len,
              fallbacks, corpus.size());

  std::printf("\n== Ablation 3: observation-feature sensitivity ==\n");
  std::printf("(mean fidelity reward when a feature is zeroed at inference)\n");
  static const char* kFeatureNames[features::kNumFeatures] = {
      "num_qubits",    "depth",       "program_comm", "critical_depth",
      "entanglement",  "parallelism", "liveness"};
  std::printf("  %-16s %12s\n", "zeroed feature", "mean reward");
  // Intact run first.
  double intact = 0.0;
  for (const auto& circuit : corpus) {
    intact += predictor.compile(circuit).reward;
  }
  intact /= static_cast<double>(corpus.size());
  std::printf("  %-16s %12.4f\n", "(none)", intact);
  for (int f = 0; f < features::kNumFeatures; ++f) {
    double total = 0.0;
    for (const auto& circuit : corpus) {
      total += predictor.compile_with_masked_feature(circuit, f).reward;
    }
    std::printf("  %-16s %12.4f\n", kFeatureNames[f],
                total / static_cast<double>(corpus.size()));
  }
}

}  // namespace

int main() {
  ablate_routing();
  ablate_episode_lengths_and_features();
  return 0;
}
