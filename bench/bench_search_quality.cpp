// Search-quality bench: how much reward policy-guided lookahead (beam /
// MCTS) recovers over the greedy argmax rollout, at what planning cost.
//
// Trains one fidelity model, compiles the benchmark corpus three ways
// (greedy compile_all, beam:K, mcts:N), and reports per-family and
// overall reward deltas (clamped >= 0 by construction — search never
// returns less than greedy), search throughput in expanded nodes/sec,
// and a deadline sweep measuring how reliably wall-clock budgets are
// honored (anytime compilation).
//
// Writes BENCH_search_quality.json with reward_delta_vs_greedy /
// per_family_delta / improved_fraction / min_delta / families_improved /
// nodes_per_sec / deadline_hit_histogram / deadline_hit_rate.
//
// Knobs: QRC_TRAIN_STEPS, QRC_EVAL_COUNT (experiment_common.hpp),
//        QRC_SEARCH_BEAM (default 8), QRC_SEARCH_SIMS (default 400).

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "experiment_common.hpp"
#include "search/search.hpp"

namespace {

using namespace qrc;

struct StrategyRun {
  std::string name;
  double mean_delta = 0.0;
  double min_delta = 0.0;
  double improved_fraction = 0.0;
  double nodes_per_sec = 0.0;
  std::uint64_t nodes = 0;
  std::map<std::string, double> family_delta;
  std::map<std::string, int> family_count;
};

StrategyRun run_strategy(const core::Predictor& predictor,
                         const std::vector<ir::Circuit>& corpus,
                         const search::SearchOptions& options) {
  StrategyRun run;
  run.name = search::strategy_name(options.strategy);
  const auto searched = predictor.compile_search_all(corpus, options);

  int improved = 0;
  std::int64_t search_us = 0;
  run.min_delta = 1e300;
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    // compile_search_all runs the greedy baseline internally and records
    // its reward — no separate compile_all pass needed.
    const double delta =
        searched[i].reward - searched[i].search_stats->baseline_reward;
    run.mean_delta += delta;
    run.min_delta = std::min(run.min_delta, delta);
    improved += searched[i].search_stats->improved ? 1 : 0;
    run.nodes += searched[i].search_stats->nodes_expanded;
    search_us += searched[i].search_stats->elapsed_us;
    const std::string family = bench_harness::family_of(corpus[i].name());
    run.family_delta[family] += delta;
    ++run.family_count[family];
  }
  run.mean_delta /= static_cast<double>(corpus.size());
  run.improved_fraction =
      static_cast<double>(improved) / static_cast<double>(corpus.size());
  // Throughput over the engine's own wall time (SearchStats::elapsed_us),
  // not the surrounding compile_search_all call — the latter includes the
  // greedy baseline rollouts, which would understate search speed.
  run.nodes_per_sec = static_cast<double>(run.nodes) /
                      std::max(static_cast<double>(search_us) / 1e6, 1e-12);
  for (auto& [family, total] : run.family_delta) {
    total /= run.family_count.at(family);
  }

  std::printf("%s: mean delta %+.5f, min delta %+.5f, improved %.0f%%, "
              "%llu nodes in %.2fs of search (%.0f nodes/sec)\n",
              run.name.c_str(), run.mean_delta, run.min_delta,
              100.0 * run.improved_fraction,
              static_cast<unsigned long long>(run.nodes),
              static_cast<double>(search_us) / 1e6, run.nodes_per_sec);
  return run;
}

void dump_family_map(std::FILE* json, const StrategyRun& run) {
  std::fprintf(json, "    \"%s\": {", run.name.c_str());
  bool first = true;
  for (const auto& [family, delta] : run.family_delta) {
    std::fprintf(json, "%s\"%s\": %.6f", first ? "" : ", ", family.c_str(),
                 delta);
    first = false;
  }
  std::fprintf(json, "}");
}

}  // namespace

int main() {
  const auto corpus = bench_harness::make_corpus();
  const auto predictor = bench_harness::train_model(
      reward::RewardKind::kFidelity, corpus, 1);

  search::SearchOptions beam;
  beam.strategy = search::Strategy::kBeam;
  beam.beam_width = bench_harness::env_int("QRC_SEARCH_BEAM", 8);
  search::SearchOptions mcts;
  mcts.strategy = search::Strategy::kMcts;
  mcts.simulations = bench_harness::env_int("QRC_SEARCH_SIMS", 400);

  std::printf("# beam:%d and mcts:%d over the corpus...\n", beam.beam_width,
              mcts.simulations);
  const StrategyRun beam_run = run_strategy(predictor, corpus, beam);
  const StrategyRun mcts_run = run_strategy(predictor, corpus, mcts);

  // Families where lookahead strictly helps under either strategy.
  std::map<std::string, double> best_family_delta;
  for (const auto* run : {&beam_run, &mcts_run}) {
    for (const auto& [family, delta] : run->family_delta) {
      auto [it, inserted] = best_family_delta.try_emplace(family, delta);
      if (!inserted) {
        it->second = std::max(it->second, delta);
      }
    }
  }
  int families_improved = 0;
  for (const auto& [family, delta] : best_family_delta) {
    families_improved += delta > 0.0 ? 1 : 0;
  }
  std::printf("families with positive mean delta: %d of %zu\n",
              families_improved, best_family_delta.size());

  // Deadline sweep: tight wall-clock budgets on an oversized MCTS budget
  // must cut the search at a quantum boundary and still return results.
  std::map<int, int> deadline_hits;
  int deadline_runs = 0;
  int deadline_hit_total = 0;
  const std::size_t sweep =
      std::min<std::size_t>(corpus.size(), 4);
  for (const int deadline_ms : {5, 25, 100}) {
    search::SearchOptions bounded = mcts;
    bounded.simulations = 10'000'000;
    bounded.deadline_ms = deadline_ms;
    for (std::size_t i = 0; i < sweep; ++i) {
      const auto result = predictor.compile_search(corpus[i], bounded);
      const bool hit = result.search_stats->deadline_hit;
      deadline_hits[deadline_ms] += hit ? 1 : 0;
      deadline_hit_total += hit ? 1 : 0;
      ++deadline_runs;
    }
  }
  const double deadline_hit_rate =
      deadline_runs > 0
          ? static_cast<double>(deadline_hit_total) / deadline_runs
          : 0.0;
  std::printf("deadline sweep: %d runs, hit rate %.2f\n", deadline_runs,
              deadline_hit_rate);

  std::FILE* json = std::fopen("BENCH_search_quality.json", "w");
  if (json != nullptr) {
    std::fprintf(json, "{\n");
    bench_harness::write_meta(json);
    std::fprintf(json,
                 "  \"bench\": \"search_quality\",\n"
                 "  \"circuits\": %zu,\n"
                 "  \"beam_width\": %d,\n"
                 "  \"mcts_simulations\": %d,\n"
                 "  \"reward_delta_vs_greedy\": {\"beam\": %.6f, "
                 "\"mcts\": %.6f},\n"
                 "  \"min_delta\": %.6f,\n"
                 "  \"improved_fraction\": {\"beam\": %.4f, "
                 "\"mcts\": %.4f},\n"
                 "  \"families_improved\": %d,\n"
                 "  \"nodes_per_sec\": {\"beam\": %.2f, \"mcts\": %.2f},\n",
                 corpus.size(), beam.beam_width, mcts.simulations,
                 beam_run.mean_delta, mcts_run.mean_delta,
                 std::min(beam_run.min_delta, mcts_run.min_delta),
                 beam_run.improved_fraction, mcts_run.improved_fraction,
                 families_improved, beam_run.nodes_per_sec,
                 mcts_run.nodes_per_sec);
    std::fprintf(json, "  \"per_family_delta\": {\n");
    dump_family_map(json, beam_run);
    std::fprintf(json, ",\n");
    dump_family_map(json, mcts_run);
    std::fprintf(json, "\n  },\n  \"deadline_hit_histogram\": {");
    bool first = true;
    for (const auto& [ms, hits] : deadline_hits) {
      std::fprintf(json, "%s\"%d\": %d", first ? "" : ", ", ms, hits);
      first = false;
    }
    std::fprintf(json, "},\n  \"deadline_hit_rate\": %.4f\n}\n",
                 deadline_hit_rate);
    std::fclose(json);
    std::printf("results written to BENCH_search_quality.json\n");
  }

  // The acceptance bar travels with the bench: search must never lose to
  // greedy (the clamp), and lookahead must strictly help somewhere.
  if (beam_run.min_delta < 0.0 || mcts_run.min_delta < 0.0) {
    std::fprintf(stderr, "FAIL: search returned less than greedy\n");
    return 1;
  }
  return 0;
}
